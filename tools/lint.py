#!/usr/bin/env python3
"""vecdb pattern lint: bans idioms that the sanitizer matrix and Status
discipline exist to prevent. Runs as a ctest test ("lint"); see
docs/ANALYSIS.md for the rule list and suppression syntax.

Usage: lint.py [repo_root]

Rules (suppress one occurrence with a trailing `// lint-allow:<rule>`):
  new-array         new T[n] / delete[] outside the AlignedBuffer wrapper --
                    bulk storage must go through AlignedFloats or std
                    containers so sizing and alignment stay audited.
  raw-pthread       direct pthread_* calls -- use std::thread / ThreadPool
                    so TSan and the invariant framework see every thread.
  discarded-status  a statement that calls a known Status/Result-returning
                    function and drops the value. The [[nodiscard]] compiler
                    check is authoritative; this catches it in un-compiled
                    configs (e.g. code behind #ifdef).
  pragma-once       header missing #pragma once.
  std-endl          std::endl in src/ -- it flushes; hot paths want '\\n'.
  removed-field     any SearchParams::profiler / ::accounting access -- the
                    pre-QueryContext alias fields were removed; route
                    Profiler / ParallelAccounting / MetricsRegistry through
                    SearchParams::ctx. The compiler catches this in built
                    configs; the lint catches code behind #ifdefs and docs
                    snippets. (Options structs' own profiler fields are
                    unaffected: the rule is scoped to SearchParams objects.)
  raw-mutex         a raw std:: mutex type (std::mutex, std::shared_mutex,
                    recursive/timed variants) anywhere outside
                    common/thread_annotations.h -- declare vecdb::Mutex /
                    vecdb::SharedMutex instead so the field can carry
                    VECDB_GUARDED_BY and the Clang Thread Safety Analysis
                    gate (VECDB_TSA) can prove the lock discipline.
  database-execute  Execute() called on a MiniDatabase object -- the
                    single-session wrapper is deprecated; create a Session
                    with MiniDatabase::CreateSession() and call
                    Session::Execute so statements go through admission
                    control and session accounting. (Scoped to variables
                    the scan can prove are MiniDatabase handles.)
  raw-intrinsics    #include <*intrin.h>, an _mm* intrinsic, or an
                    __m128/__m256/__m512 vector type outside src/distance/
                    (and the CRC-32C dispatch in src/pgstub/crc32c.cc) --
                    SIMD stays behind the KernelDispatch registry so every
                    call site inherits runtime cpuid gating and the
                    VECDB_KERNEL_ISA override instead of SIGILLing on older
                    hosts.
  raw-socket        a socket(2)-family libc call (socket, bind, listen,
                    accept, connect, send*/recv*, poll, setsockopt, ...)
                    outside src/net/ -- networking goes through the RAII
                    Socket/WakePipe/Poll wrappers (net/socket.h) so fd
                    lifetimes, EINTR retries, and non-blocking semantics
                    are handled once, in one audited place.

Additionally, every `// lint-allow:<rule>` suppression is itself audited:
naming a rule that does not exist, or sitting on a line where its rule no
longer fires, is reported as stale-suppression -- suppressions cannot
outlive the violation they excuse.
"""

import os
import re
import sys

SCAN_DIRS = ("src", "tests", "bench", "examples", "tools")
SOURCE_EXTS = (".h", ".cc")
ALLOW_RE = re.compile(r"//\s*lint-allow:([\w-]+)")

# Files allowed to use raw array new/delete: the owning wrapper itself.
NEW_ARRAY_ALLOWED = {os.path.join("src", "common", "aligned_buffer.h")}

# Files allowed to name raw std mutex types: the annotated wrapper itself.
RAW_MUTEX_ALLOWED = {os.path.join("src", "common", "thread_annotations.h")}

# Where raw SIMD may live: the dispatched kernel tiers and the CRC-32C
# hardware fast path. Everything else consumes SIMD through the
# KernelDispatch registry (distance/dispatch.h).
INTRINSICS_ALLOWED_PREFIX = os.path.join("src", "distance") + os.sep
INTRINSICS_ALLOWED = {os.path.join("src", "pgstub", "crc32c.cc")}

# Where raw socket(2)-family calls may live: the RAII wrapper layer.
SOCKET_ALLOWED_PREFIX = os.path.join("src", "net") + os.sep

# Every rule a lint-allow comment may name (stale-suppression audits this).
KNOWN_RULES = {
    "new-array", "raw-pthread", "discarded-status", "pragma-once",
    "std-endl", "removed-field", "raw-mutex", "database-execute",
    "raw-intrinsics", "raw-socket",
}

NEW_ARRAY_RE = re.compile(r"\bnew\s+[\w:<>]+\s*\[|\bdelete\s*\[\]")
RAW_MUTEX_RE = re.compile(
    r"\bstd::(?:mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"recursive_timed_mutex|shared_timed_mutex)\b"
)
# `SearchParams p;` / `SearchParams p = other;` -- harvested per file so the
# removed-field rule only fires on SearchParams objects, not on the many
# options structs that legitimately carry a profiler field.
SEARCHPARAMS_DECL_RE = re.compile(r"\bSearchParams\s+(\w+)\s*[;={]")
# Designated init naming a removed field: `SearchParams{.profiler = ...}`.
SEARCHPARAMS_REMOVED_INIT_RE = re.compile(
    r"\bSearchParams\s*\{[^}]*\.\s*(?:profiler|accounting)\b"
)
# MiniDatabase handle declarations, harvested per file so database-execute
# only fires on objects the scan can prove are databases (not on Session
# or other Execute-bearing types): `MiniDatabase* db` / `MiniDatabase& db`,
# `unique_ptr<MiniDatabase> db`, and `db = [std::move(]MiniDatabase::Open`.
MINIDATABASE_DECL_RES = (
    re.compile(r"\b(?:sql::)?MiniDatabase\s*[*&]\s*(?:const\s+)?(\w+)"),
    re.compile(r"\bunique_ptr<\s*(?:sql::)?MiniDatabase\s*>\s+(\w+)"),
    re.compile(r"\b(\w+)\s*=\s*(?:std::move\()?\s*(?:sql::)?"
               r"MiniDatabase::Open\b"),
)
PTHREAD_RE = re.compile(r"\bpthread_\w+\s*\(")
ENDL_RE = re.compile(r"\bstd::endl\b")
INTRINSICS_RE = re.compile(
    r"#\s*include\s*<\w*intrin\.h>|\b_mm\d*_\w+|\b__m(?:128|256|512)\w*\b"
)
# Bare libc socket-family calls. The lookbehind rejects qualified or
# member calls (obj.send(, Socket::Accept(, foo->poll() so only the raw
# global-namespace libc functions fire.
RAW_SOCKET_RE = re.compile(
    r"(?<![\w.:>])(?:socket|bind|listen|accept4?|connect|setsockopt|"
    r"getsockopt|getsockname|getpeername|recv|recvfrom|recvmsg|send|"
    r"sendto|sendmsg|shutdown|poll|ppoll|epoll_create1?|epoll_ctl|"
    r"epoll_wait|select|pselect|inet_pton|inet_ntop)\s*\("
)

# `Status Foo(`, `Result<T> Foo(`, with optional static/virtual/[[nodiscard]]
# qualifiers -- harvested from headers to drive the discarded-status rule.
STATUS_FN_RE = re.compile(
    r"^\s*(?:\[\[nodiscard\]\]\s+)?(?:static\s+)?(?:virtual\s+)?"
    r"(?:::)?(?:\w+::)*(?:Status|Result<.+>)\s+(\w+)\s*\("
)
# Any other function declaration/definition: used to drop harvested names
# that also exist with a non-Status return type (cross-class collisions,
# e.g. a void Add() next to a Status Add()), which a name-based scan cannot
# tell apart at the call site.
OTHER_FN_RE = re.compile(
    r"^\s*(?:static\s+)?(?:virtual\s+)?(?:inline\s+)?(?:constexpr\s+)?"
    r"(?:const\s+)?[\w:<>,\s*&]+?[\s*&](\w+)\s*\(")
# A line whose statement visibly consumes the returned value.
CONSUMED_RE = re.compile(r"\.(?:ValueOrDie|ok|status|IsNotFound)\s*\(")
# A previous line ending like this means the current line continues it.
CONTINUATION_TAIL_RE = re.compile(r"(?:[,(=+\-*/<>&|?:]|<<|&&|\|\|)\s*$")

COMMENT_OR_STRING_RE = re.compile(r'//.*$|"(?:[^"\\]|\\.)*"')


def strip_comments_and_strings(line):
    """Blanks out comments and string literals so rules skip their text."""
    return COMMENT_OR_STRING_RE.sub(lambda m: " " * len(m.group()), line)


def harvest_status_functions(root, files):
    status_names = set()
    other_names = set()
    for path in files:
        if not path.endswith(".h"):
            continue
        with open(os.path.join(root, path), encoding="utf-8") as f:
            for line in f:
                m = STATUS_FN_RE.match(line)
                if m:
                    status_names.add(m.group(1))
                    continue
                m = OTHER_FN_RE.match(line)
                if m:
                    other_names.add(m.group(1))
    # A name is only usable if every declaration of it returns Status/Result.
    return status_names - other_names


def discarded_status_re(names):
    """A full-line statement `obj.Foo(...);` / `Foo(...);` for a harvested
    name: no assignment, return, wrap, or (void) cast anywhere on the line."""
    alt = "|".join(sorted(names))
    return re.compile(
        r"^\s*(?:\w+(?:\.|->))*(?:%s)\s*\(.*\)\s*;\s*$" % alt
    )


def collect_files(root):
    out = []
    for top in SCAN_DIRS:
        for dirpath, dirnames, filenames in os.walk(os.path.join(root, top)):
            dirnames[:] = [d for d in dirnames if not d.startswith("build")]
            for name in sorted(filenames):
                if name.endswith(SOURCE_EXTS):
                    out.append(
                        os.path.relpath(os.path.join(dirpath, name), root)
                    )
    return sorted(out)


def lint_file(root, path, status_stmt_re, errors):
    with open(os.path.join(root, path), encoding="utf-8") as f:
        lines = f.read().splitlines()

    allowed_rules_by_line = {}
    for i, line in enumerate(lines, 1):
        for m in ALLOW_RE.finditer(line):
            allowed_rules_by_line.setdefault(i, set()).add(m.group(1))

    used_suppressions = set()  # (lineno, rule) pairs that earned their keep

    def report(lineno, rule, message):
        if rule in allowed_rules_by_line.get(lineno, set()):
            used_suppressions.add((lineno, rule))
            return
        errors.append("%s:%d: [%s] %s" % (path, lineno, rule, message))

    if path.endswith(".h") and not any(
        l.startswith("#pragma once") for l in lines
    ):
        report(1, "pragma-once", "header is missing #pragma once")

    # First pass: names of SearchParams-typed locals, so the removed-field
    # rule can tell `params.profiler` (banned) from `kmeans_opt.profiler`
    # (a different struct, fine). Any access -- read or write -- is banned:
    # the fields no longer exist.
    searchparams_vars = set()
    database_vars = set()
    for raw in lines:
        line = strip_comments_and_strings(raw)
        for m in SEARCHPARAMS_DECL_RE.finditer(line):
            searchparams_vars.add(m.group(1))
        for decl_re in MINIDATABASE_DECL_RES:
            for m in decl_re.finditer(line):
                database_vars.add(m.group(1))
    removed_field_re = None
    if searchparams_vars:
        removed_field_re = re.compile(
            r"\b(?:%s)\s*\.\s*(?:profiler|accounting)\b"
            % "|".join(sorted(searchparams_vars))
        )
    database_execute_re = None
    if database_vars:
        alt = "|".join(sorted(database_vars))
        database_execute_re = re.compile(
            r"(?:\b|\(\s*\*\s*)(?:%s)\s*(?:\)\s*)?(?:->|\.)\s*Execute\s*\("
            % alt
        )

    in_src = path.startswith("src" + os.sep)
    prev_code = ""
    for i, raw in enumerate(lines, 1):
        line = strip_comments_and_strings(raw)
        if (removed_field_re and removed_field_re.search(line)) or \
                SEARCHPARAMS_REMOVED_INIT_RE.search(line):
            report(i, "removed-field",
                   "SearchParams::profiler/accounting were removed; "
                   "use the SearchParams::ctx QueryContext fields")
        if NEW_ARRAY_RE.search(line) and path not in NEW_ARRAY_ALLOWED:
            report(i, "new-array",
                   "raw array new/delete; use AlignedFloats or a container")
        if RAW_MUTEX_RE.search(line) and path not in RAW_MUTEX_ALLOWED:
            report(i, "raw-mutex",
                   "raw std:: mutex type; use vecdb::Mutex/SharedMutex from "
                   "common/thread_annotations.h so VECDB_GUARDED_BY and the "
                   "VECDB_TSA gate apply")
        if PTHREAD_RE.search(line):
            report(i, "raw-pthread",
                   "raw pthread_ call; use std::thread or ThreadPool")
        if (INTRINSICS_RE.search(line)
                and not path.startswith(INTRINSICS_ALLOWED_PREFIX)
                and path not in INTRINSICS_ALLOWED):
            report(i, "raw-intrinsics",
                   "raw SIMD intrinsic/include outside src/distance/; go "
                   "through the KernelDispatch registry (distance/dispatch.h) "
                   "so cpuid gating and VECDB_KERNEL_ISA apply")
        if (RAW_SOCKET_RE.search(line)
                and not path.startswith(SOCKET_ALLOWED_PREFIX)):
            report(i, "raw-socket",
                   "raw socket(2)-family call outside src/net/; use the "
                   "Socket/WakePipe/Poll wrappers (net/socket.h)")
        if in_src and ENDL_RE.search(line):
            report(i, "std-endl", "std::endl flushes; use '\\n'")
        if database_execute_re and database_execute_re.search(line):
            report(i, "database-execute",
                   "MiniDatabase::Execute is deprecated; CreateSession() "
                   "and call Session::Execute (admission + accounting)")
        if (status_stmt_re.match(line)
                and not CONSUMED_RE.search(line)
                and not CONTINUATION_TAIL_RE.search(prev_code)):
            report(i, "discarded-status",
                   "Status/Result-returning call discarded; handle it, "
                   "propagate it, or cast to (void)")
        if line.strip():
            prev_code = line.rstrip()

    # Suppression audit: every lint-allow must name a real rule AND sit on
    # a line where that rule still fires; anything else has gone stale.
    for lineno, rules in sorted(allowed_rules_by_line.items()):
        for rule in sorted(rules):
            if rule not in KNOWN_RULES:
                errors.append(
                    "%s:%d: [stale-suppression] lint-allow names unknown "
                    "rule '%s'" % (path, lineno, rule))
            elif (lineno, rule) not in used_suppressions:
                errors.append(
                    "%s:%d: [stale-suppression] lint-allow:%s no longer "
                    "fires here; drop the suppression" % (path, lineno, rule))


def main():
    root = sys.argv[1] if len(sys.argv) > 1 else os.getcwd()
    files = collect_files(root)
    if not files:
        print("lint.py: no source files found under %s" % root)
        return 1
    status_stmt_re = discarded_status_re(
        harvest_status_functions(root, files) or {"__none__"}
    )
    errors = []
    for path in files:
        lint_file(root, path, status_stmt_re, errors)
    for err in errors:
        print(err)
    print("lint.py: %d file(s) scanned, %d error(s)" % (len(files), len(errors)))
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
