#!/usr/bin/env bash
# clang-tidy gate over src/ (and optionally more), driven by the
# compile_commands.json that CMake now exports unconditionally.
#
#   tools/run_clang_tidy.sh [build-dir] [source-glob-dir...]
#
# Exit codes: 0 clean, 1 findings (or misuse), 77 clang-tidy unavailable —
# ctest maps 77 to SKIPPED via SKIP_RETURN_CODE, and ci/run_checks.sh
# prints a visible notice instead of silently passing.
set -uo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
shift || true
SCAN_DIRS=("${@:-src}")

TIDY="${CLANG_TIDY:-}"
if [[ -z "${TIDY}" ]]; then
  for candidate in clang-tidy clang-tidy-{20,19,18,17,16,15,14}; do
    if command -v "${candidate}" >/dev/null 2>&1; then
      TIDY="${candidate}"
      break
    fi
  done
fi
if [[ -z "${TIDY}" ]]; then
  echo "NOTICE: clang-tidy not found on PATH (set CLANG_TIDY to override);" \
       "skipping the tidy gate" >&2
  exit 77
fi

if [[ ! -f "${BUILD_DIR}/compile_commands.json" ]]; then
  echo "error: ${BUILD_DIR}/compile_commands.json not found; configure" \
       "CMake first (it is exported unconditionally)" >&2
  exit 1
fi

FILES=()
for dir in "${SCAN_DIRS[@]}"; do
  while IFS= read -r f; do
    FILES+=("$f")
  done < <(find "${dir}" -name '*.cc' | sort)
done
if [[ ${#FILES[@]} -eq 0 ]]; then
  echo "error: no .cc files found under: ${SCAN_DIRS[*]}" >&2
  exit 1
fi

JOBS="$(nproc 2>/dev/null || echo 4)"
echo "=== ${TIDY} -p ${BUILD_DIR} over ${#FILES[@]} files (${JOBS} jobs) ==="
# -quiet suppresses the "N warnings generated" chatter; .clang-tidy sets
# WarningsAsErrors so any finding fails the batch.
printf '%s\n' "${FILES[@]}" \
  | xargs -P "${JOBS}" -n 8 "${TIDY}" -p "${BUILD_DIR}" -quiet
status=$?
if [[ ${status} -ne 0 ]]; then
  echo "clang-tidy: findings above are gate failures (.clang-tidy sets" \
       "WarningsAsErrors); fix them or add a justified NOLINT(check)" >&2
  exit 1
fi
echo "clang-tidy: clean"
