#include "core/experiment.h"

#include <gtest/gtest.h>

#include "core/parallel.h"
#include "datasets/ground_truth.h"
#include "datasets/synthetic.h"
#include "faisslike/flat_index.h"

namespace vecdb {
namespace {

TEST(TablePrinterTest, Formatters) {
  EXPECT_EQ(TablePrinter::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Num(2.0, 0), "2");
  EXPECT_EQ(TablePrinter::Ratio(2.5), "2.5x");
  EXPECT_EQ(TablePrinter::Megabytes(1024 * 1024), "1.0 MB");
  EXPECT_EQ(TablePrinter::Megabytes(3 * 1024 * 1024 / 2), "1.5 MB");
}

TEST(ParallelAccountingTest, ModeledSecondsIsCriticalPathPlusSerial) {
  ParallelAccounting acct;
  acct.Reset(4);
  acct.worker_busy_nanos = {100, 400, 200, 300};
  acct.serial_nanos = 50;
  EXPECT_DOUBLE_EQ(acct.ModeledSeconds(), 450e-9);
  EXPECT_DOUBLE_EQ(acct.TotalWorkSeconds(), 1050e-9);
}

TEST(ParallelAccountingTest, ResetSizesAndZeroes) {
  ParallelAccounting acct;
  acct.serial_nanos = 5;
  acct.Reset(3);
  EXPECT_EQ(acct.worker_busy_nanos.size(), 3u);
  EXPECT_EQ(acct.serial_nanos, 0);
  EXPECT_DOUBLE_EQ(acct.ModeledSeconds(), 0.0);
}

TEST(BenchArgsTest, ParsesAllFlags) {
  const char* argv[] = {"bench",
                        "--scale=0.5",
                        "--max-queries=7",
                        "--max-base=123",
                        "--datasets=SIFT1M,GIST1M",
                        "--data-dir=/tmp/x"};
  BenchArgs args = BenchArgs::Parse(6, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(args.scale, 0.5);
  EXPECT_EQ(args.max_queries, 7u);
  EXPECT_EQ(args.max_base, 123u);
  ASSERT_EQ(args.datasets.size(), 2u);
  EXPECT_EQ(args.datasets[0], "SIFT1M");
  EXPECT_EQ(args.datasets[1], "GIST1M");
  EXPECT_EQ(args.data_dir, "/tmp/x");
}

TEST(BenchArgsTest, DefaultsWhenNoFlags) {
  const char* argv[] = {"bench"};
  BenchArgs args = BenchArgs::Parse(1, const_cast<char**>(argv));
  EXPECT_GT(args.scale, 0.0);
  EXPECT_TRUE(args.datasets.empty());
  EXPECT_EQ(args.max_base, 0u);
}

TEST(RunSearchBatchTest, TimesAndScoresRecall) {
  SyntheticOptions opt;
  opt.dim = 8;
  opt.num_base = 200;
  opt.num_queries = 10;
  auto ds = GenerateClustered(opt);
  ComputeGroundTruth(&ds, 5, Metric::kL2);
  faisslike::FlatIndex index(ds.dim);
  ASSERT_TRUE(index.Build(ds.base.data(), ds.num_base).ok());
  SearchParams params;
  params.k = 5;
  auto run = std::move(RunSearchBatch(index, ds, params)).ValueOrDie();
  EXPECT_EQ(run.queries, 10u);
  EXPECT_GT(run.avg_millis, 0.0);
  EXPECT_DOUBLE_EQ(run.recall_at_k, 1.0);  // exact index
  // max_queries caps the batch.
  auto capped =
      std::move(RunSearchBatch(index, ds, params, 3)).ValueOrDie();
  EXPECT_EQ(capped.queries, 3u);
}

TEST(RunSearchBatchTest, EmptyQueriesIsError) {
  SyntheticOptions opt;
  opt.dim = 4;
  opt.num_base = 10;
  opt.num_queries = 0;
  auto ds = GenerateClustered(opt);
  faisslike::FlatIndex index(ds.dim);
  ASSERT_TRUE(index.Build(ds.base.data(), ds.num_base).ok());
  SearchParams params;
  EXPECT_FALSE(RunSearchBatch(index, ds, params).ok());
}

}  // namespace
}  // namespace vecdb
