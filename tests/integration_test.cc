// Cross-module integration tests: the equivalences the paper's methodology
// rests on (same index + same parameters + same centroids => same results
// across engines), end-to-end behaviour on paper-analog datasets, and the
// substrate under memory pressure.
#include <gtest/gtest.h>

#include <filesystem>

#include <memory>

#include "bridge/bridged_ivf_flat.h"
#include "datasets/ground_truth.h"
#include "datasets/registry.h"
#include "faisslike/hnsw.h"
#include "faisslike/ivf_flat.h"
#include "pase/hnsw.h"
#include "pase/ivf_flat.h"

namespace vecdb {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/integ_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    smgr_ = std::make_unique<pgstub::StorageManager>(
        pgstub::StorageManager::Open(dir_, 8192).ValueOrDie());
    bufmgr_ = std::make_unique<pgstub::BufferManager>(smgr_.get(), 16384);
    const auto* spec = FindDataset("SIFT1M");
    ds_ = MakePaperAnalog(*spec, 0.004);  // 4000 x 128
    ComputeGroundTruth(&ds_, 10, Metric::kL2);
  }

  pase::PaseEnv Env() { return {smgr_.get(), bufmgr_.get()}; }

  std::string dir_;
  std::unique_ptr<pgstub::StorageManager> smgr_;
  std::unique_ptr<pgstub::BufferManager> bufmgr_;
  Dataset ds_;
};

TEST_F(IntegrationTest, Fig15Mechanism_FaissWithPaseCentroidsIsIdentical) {
  // Build PASE IVF_FLAT, transplant its centroids into the Faiss-like
  // engine ("Faiss*"), and verify identical result sets — the exact
  // equivalence the paper's Fig 15 exploits.
  pase::PaseIvfFlatOptions popt;
  popt.num_clusters = 32;
  popt.sample_ratio = 0.2;
  pase::PaseIvfFlatIndex pase_index(Env(), ds_.dim, popt);
  ASSERT_TRUE(pase_index.Build(ds_.base.data(), ds_.num_base).ok());

  faisslike::IvfFlatOptions fopt;
  fopt.num_clusters = 32;
  faisslike::IvfFlatIndex faiss_star(ds_.dim, fopt);
  ASSERT_TRUE(faiss_star
                  .SetCentroids(pase_index.centroids(),
                                pase_index.num_clusters())
                  .ok());
  ASSERT_TRUE(faiss_star.AddBatch(ds_.base.data(), ds_.num_base).ok());

  SearchParams params;
  params.k = 10;
  params.nprobe = 8;
  for (size_t q = 0; q < ds_.num_queries; ++q) {
    auto rp = pase_index.Search(ds_.query_vector(q), params).ValueOrDie();
    auto rf = faiss_star.Search(ds_.query_vector(q), params).ValueOrDie();
    ASSERT_EQ(rp.size(), rf.size()) << "query " << q;
    for (size_t i = 0; i < rp.size(); ++i) {
      EXPECT_EQ(rp[i].id, rf[i].id) << "query " << q << " rank " << i;
    }
  }
}

TEST_F(IntegrationTest, AllEnginesReachTargetRecallOnPaperAnalog) {
  SearchParams params;
  params.k = 10;
  params.nprobe = 16;
  params.efs = 100;

  faisslike::IvfFlatOptions fopt;
  fopt.num_clusters = 63;  // sqrt-ish of 4000
  faisslike::IvfFlatIndex faiss_index(ds_.dim, fopt);
  ASSERT_TRUE(faiss_index.Build(ds_.base.data(), ds_.num_base).ok());

  pase::PaseIvfFlatOptions popt;
  popt.num_clusters = 63;
  pase::PaseIvfFlatIndex pase_index(Env(), ds_.dim, popt);
  ASSERT_TRUE(pase_index.Build(ds_.base.data(), ds_.num_base).ok());

  bridge::BridgedIvfFlatOptions bopt;
  bopt.num_clusters = 63;
  bridge::BridgedIvfFlatIndex bridged(Env(), ds_.dim, bopt);
  ASSERT_TRUE(bridged.Build(ds_.base.data(), ds_.num_base).ok());

  for (const VectorIndex* index :
       {static_cast<const VectorIndex*>(&faiss_index),
        static_cast<const VectorIndex*>(&pase_index),
        static_cast<const VectorIndex*>(&bridged)}) {
    std::vector<std::vector<Neighbor>> results;
    for (size_t q = 0; q < ds_.num_queries; ++q) {
      results.push_back(
          index->Search(ds_.query_vector(q), params).ValueOrDie());
    }
    EXPECT_GE(MeanRecallAtK(results, ds_.ground_truth, 10), 0.7)
        << index->Describe();
  }
}

TEST_F(IntegrationTest, HnswSizeBlowupMatchesPaperDirection) {
  // Fig 13: PASE HNSW is several times larger than Faiss HNSW.
  faisslike::HnswOptions fopt;
  fopt.bnn = 16;
  fopt.efb = 40;
  faisslike::HnswIndex faiss_hnsw(ds_.dim, fopt);
  const size_t n = 1200;
  ASSERT_TRUE(faiss_hnsw.Build(ds_.base.data(), n).ok());

  pase::PaseHnswOptions popt;
  popt.bnn = 16;
  popt.efb = 40;
  pase::PaseHnswIndex pase_hnsw(Env(), ds_.dim, popt);
  ASSERT_TRUE(pase_hnsw.Build(ds_.base.data(), n).ok());

  EXPECT_GT(pase_hnsw.SizeBytes(), 2 * faiss_hnsw.SizeBytes());
}

TEST_F(IntegrationTest, PaseSurvivesTinyBufferPool) {
  // With a pool far smaller than the index, every search faults pages in
  // and out through the clock sweep — results must stay correct.
  auto small_pool =
      std::make_unique<pgstub::BufferManager>(smgr_.get(), 32);
  pase::PaseEnv env{smgr_.get(), small_pool.get()};
  pase::PaseIvfFlatOptions opt;
  opt.num_clusters = 16;
  opt.rel_prefix = "tiny_pool";
  pase::PaseIvfFlatIndex index(env, ds_.dim, opt);
  ASSERT_TRUE(index.Build(ds_.base.data(), 2000).ok());
  EXPECT_GT(small_pool->stats().evictions, 0u);

  // Compare against a generously-pooled twin.
  pase::PaseIvfFlatOptions opt2 = opt;
  opt2.rel_prefix = "big_pool";
  pase::PaseIvfFlatIndex big(Env(), ds_.dim, opt2);
  ASSERT_TRUE(big.Build(ds_.base.data(), 2000).ok());
  SearchParams params;
  params.k = 10;
  params.nprobe = 8;
  for (size_t q = 0; q < 5; ++q) {
    EXPECT_EQ(index.Search(ds_.query_vector(q), params).ValueOrDie(),
              big.Search(ds_.query_vector(q), params).ValueOrDie());
  }
}

TEST_F(IntegrationTest, NHeapVsKHeapSameAnswersDifferentCost) {
  // RC#6 is a pure performance defect: result correctness is unaffected.
  pase::PaseIvfFlatOptions popt;
  popt.num_clusters = 32;
  pase::PaseIvfFlatIndex pase_index(Env(), ds_.dim, popt);
  ASSERT_TRUE(pase_index.Build(ds_.base.data(), ds_.num_base).ok());

  faisslike::IvfFlatOptions fopt;
  fopt.num_clusters = 32;
  faisslike::IvfFlatIndex faiss_star(ds_.dim, fopt);
  ASSERT_TRUE(faiss_star
                  .SetCentroids(pase_index.centroids(),
                                pase_index.num_clusters())
                  .ok());
  ASSERT_TRUE(faiss_star.AddBatch(ds_.base.data(), ds_.num_base).ok());

  SearchParams params;
  params.k = 100;
  params.nprobe = 32;
  auto rp = pase_index.Search(ds_.query_vector(0), params).ValueOrDie();
  auto rf = faiss_star.Search(ds_.query_vector(0), params).ValueOrDie();
  EXPECT_EQ(rp, rf);
}

}  // namespace
}  // namespace vecdb
