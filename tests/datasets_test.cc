#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "datasets/ground_truth.h"
#include "datasets/io.h"
#include "datasets/registry.h"
#include "datasets/synthetic.h"
#include "distance/kernels.h"

namespace vecdb {
namespace {

TEST(SyntheticTest, ShapesMatchOptions) {
  SyntheticOptions opt;
  opt.dim = 24;
  opt.num_base = 321;
  opt.num_queries = 17;
  auto ds = GenerateClustered(opt);
  EXPECT_EQ(ds.dim, 24u);
  EXPECT_EQ(ds.num_base, 321u);
  EXPECT_EQ(ds.num_queries, 17u);
  EXPECT_EQ(ds.base.size(), 321u * 24u);
  EXPECT_EQ(ds.queries.size(), 17u * 24u);
}

TEST(SyntheticTest, DeterministicForSeed) {
  SyntheticOptions opt;
  opt.dim = 8;
  opt.num_base = 50;
  opt.num_queries = 5;
  auto a = GenerateClustered(opt);
  auto b = GenerateClustered(opt);
  for (size_t i = 0; i < a.base.size(); ++i) {
    EXPECT_FLOAT_EQ(a.base[i], b.base[i]);
  }
}

TEST(SyntheticTest, QueriesHaveNearNeighbors) {
  SyntheticOptions opt;
  opt.dim = 16;
  opt.num_base = 400;
  opt.num_queries = 10;
  opt.cluster_stddev = 0.1f;
  auto ds = GenerateClustered(opt);
  // Each query is a perturbed base vector: its nearest neighbor must be
  // much closer than a random vector.
  for (size_t q = 0; q < ds.num_queries; ++q) {
    float best = 1e30f, mean = 0;
    for (size_t i = 0; i < ds.num_base; ++i) {
      const float d =
          L2Sqr(ds.query_vector(q), ds.base_vector(i), ds.dim);
      best = std::min(best, d);
      mean += d;
    }
    mean /= ds.num_base;
    EXPECT_LT(best, mean * 0.25f);
  }
}

TEST(GroundTruthTest, MatchesBruteForceOrder) {
  SyntheticOptions opt;
  opt.dim = 8;
  opt.num_base = 200;
  opt.num_queries = 5;
  auto ds = GenerateClustered(opt);
  ComputeGroundTruth(&ds, 10, Metric::kL2);
  ASSERT_EQ(ds.ground_truth.size(), 5u);
  for (size_t q = 0; q < 5; ++q) {
    ASSERT_EQ(ds.ground_truth[q].size(), 10u);
    // Distances must be non-decreasing along the list.
    float prev = -1;
    for (int64_t id : ds.ground_truth[q]) {
      const float d = L2Sqr(ds.query_vector(q),
                            ds.base_vector(static_cast<size_t>(id)), ds.dim);
      EXPECT_GE(d, prev);
      prev = d;
    }
  }
}

TEST(GroundTruthTest, ParallelMatchesSerial) {
  SyntheticOptions opt;
  opt.dim = 8;
  opt.num_base = 150;
  opt.num_queries = 8;
  auto serial = GenerateClustered(opt);
  auto parallel = GenerateClustered(opt);
  ComputeGroundTruth(&serial, 5, Metric::kL2);
  ThreadPool pool(4);
  ComputeGroundTruth(&parallel, 5, Metric::kL2, &pool);
  EXPECT_EQ(serial.ground_truth, parallel.ground_truth);
}

TEST(RecallTest, PerfectAndPartial) {
  std::vector<int64_t> gt = {1, 2, 3, 4};
  std::vector<Neighbor> perfect = {{0.1f, 1}, {0.2f, 2}, {0.3f, 3}, {0.4f, 4}};
  EXPECT_DOUBLE_EQ(RecallAtK(perfect, gt, 4), 1.0);
  std::vector<Neighbor> half = {{0.1f, 1}, {0.2f, 9}, {0.3f, 3}, {0.4f, 8}};
  EXPECT_DOUBLE_EQ(RecallAtK(half, gt, 4), 0.5);
  EXPECT_DOUBLE_EQ(RecallAtK({}, gt, 4), 0.0);
}

TEST(RegistryTest, SixPaperDatasetsWithExactDims) {
  const auto& specs = PaperDatasets();
  ASSERT_EQ(specs.size(), 6u);
  EXPECT_EQ(specs[0].name, "SIFT1M");
  EXPECT_EQ(specs[0].dim, 128u);
  EXPECT_EQ(specs[1].dim, 960u);   // GIST1M
  EXPECT_EQ(specs[2].dim, 256u);   // DEEP1M
  EXPECT_EQ(specs[4].dim, 96u);    // DEEP10M
  EXPECT_EQ(specs[5].dim, 100u);   // TURING10M
  EXPECT_EQ(specs[3].paper_c, 3162u);
  EXPECT_EQ(specs[1].pq_m, 60u);
}

TEST(RegistryTest, LookupIsCaseInsensitive) {
  EXPECT_NE(FindDataset("sift1m"), nullptr);
  EXPECT_NE(FindDataset("SIFT1M"), nullptr);
  EXPECT_EQ(FindDataset("nope"), nullptr);
}

TEST(RegistryTest, ScaledAnalogShrinksConsistently) {
  const auto* spec = FindDataset("SIFT1M");
  ASSERT_NE(spec, nullptr);
  auto ds = MakePaperAnalog(*spec, 0.01);
  EXPECT_EQ(ds.dim, 128u);
  EXPECT_EQ(ds.num_base, 10000u);
  EXPECT_EQ(ds.name, "SIFT1M");
  const uint32_t c = ScaledClusterCount(*spec, 0.01);
  EXPECT_EQ(c, 100u);  // 1000 * sqrt(0.01)
  EXPECT_EQ(ScaledClusterCount(*spec, 1.0), 1000u);
}

TEST(FvecsIoTest, RoundTrip) {
  const std::string path = ::testing::TempDir() + "/roundtrip.fvecs";
  std::vector<float> data = {1.f, 2.f, 3.f, 4.f, 5.f, 6.f};
  ASSERT_TRUE(WriteFvecs(path, data.data(), 2, 3).ok());
  auto loaded = ReadFvecs(path).ValueOrDie();
  EXPECT_EQ(loaded.dim, 3u);
  EXPECT_EQ(loaded.num, 2u);
  for (size_t i = 0; i < 6; ++i) EXPECT_FLOAT_EQ(loaded.values[i], data[i]);
  std::remove(path.c_str());
}

TEST(FvecsIoTest, MissingFileIsIOError) {
  EXPECT_TRUE(ReadFvecs("/nonexistent/x.fvecs").status().IsIOError());
}

TEST(FvecsIoTest, TruncatedFileIsCorruption) {
  const std::string path = ::testing::TempDir() + "/truncated.fvecs";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  const int32_t d = 10;  // promises 10 floats, delivers 2
  std::fwrite(&d, sizeof(d), 1, f);
  const float junk[2] = {1.f, 2.f};
  std::fwrite(junk, sizeof(float), 2, f);
  std::fclose(f);
  EXPECT_TRUE(ReadFvecs(path).status().IsCorruption());
  std::remove(path.c_str());
}

TEST(IvecsIoTest, RoundTrip) {
  const std::string path = ::testing::TempDir() + "/roundtrip.ivecs";
  std::vector<std::vector<int32_t>> rows = {{1, 2, 3}, {4, 5, 6}};
  ASSERT_TRUE(WriteIvecs(path, rows).ok());
  auto loaded = ReadIvecs(path).ValueOrDie();
  EXPECT_EQ(loaded, rows);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace vecdb
