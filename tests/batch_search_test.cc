// SearchBatch contract: the batched path must return exactly what N
// single-query Search calls return (ids and distances), for the overriding
// faisslike IVF indexes and for the looping fallback the PASE engine
// inherits — with and without tombstones, across thread counts, and at the
// nq = 0 / nq = 1 edges. Also pins the RC#1 claim: one batch selects
// buckets for every query with a single SGEMM call.
#include <gtest/gtest.h>

#include <filesystem>

#include <memory>
#include <vector>

#include "common/profiler.h"
#include "core/parallel.h"
#include "datasets/synthetic.h"
#include "faisslike/ivf_flat.h"
#include "faisslike/ivf_pq.h"
#include "pase/ivf_flat.h"
#include "pgstub/bufmgr.h"
#include "pgstub/smgr.h"

namespace vecdb {
namespace {

Dataset TestData() {
  SyntheticOptions opt;
  opt.dim = 16;
  opt.num_base = 1200;
  opt.num_queries = 32;
  return GenerateClustered(opt);
}

/// Asserts SearchBatch over the dataset's query block equals per-query
/// Search, element by element (same ids AND bit-identical distances).
void CheckBatchMatchesPerQuery(const VectorIndex& index, const Dataset& ds,
                               const SearchParams& params) {
  auto batched =
      index.SearchBatch(ds.queries.data(), ds.num_queries, params)
          .ValueOrDie();
  ASSERT_EQ(batched.size(), ds.num_queries) << index.Describe();
  for (size_t q = 0; q < ds.num_queries; ++q) {
    auto single = index.Search(ds.query_vector(q), params).ValueOrDie();
    ASSERT_EQ(batched[q].size(), single.size())
        << index.Describe() << " q=" << q;
    for (size_t i = 0; i < single.size(); ++i) {
      EXPECT_EQ(batched[q][i].id, single[i].id)
          << index.Describe() << " q=" << q << " i=" << i;
      EXPECT_EQ(batched[q][i].dist, single[i].dist)
          << index.Describe() << " q=" << q << " i=" << i;
    }
  }
}

/// Edge cases every implementation must share: nq = 0 yields an empty
/// result set, nq = 1 equals one Search call, null queries is rejected.
void CheckBatchEdges(const VectorIndex& index, const Dataset& ds,
                     const SearchParams& params) {
  auto empty = index.SearchBatch(ds.queries.data(), 0, params).ValueOrDie();
  EXPECT_TRUE(empty.empty()) << index.Describe();
  EXPECT_TRUE(index.SearchBatch(nullptr, 0, params).ok());

  auto one = index.SearchBatch(ds.query_vector(0), 1, params).ValueOrDie();
  ASSERT_EQ(one.size(), 1u);
  auto single = index.Search(ds.query_vector(0), params).ValueOrDie();
  EXPECT_EQ(one[0], single) << index.Describe();

  EXPECT_FALSE(index.SearchBatch(nullptr, 3, params).ok())
      << index.Describe();
}

TEST(BatchSearchTest, FaissIvfFlatMatchesPerQuery) {
  auto ds = TestData();
  faisslike::IvfFlatOptions opt;
  opt.num_clusters = 16;
  opt.sample_ratio = 1.0;
  faisslike::IvfFlatIndex index(ds.dim, opt);
  ASSERT_TRUE(index.Build(ds.base.data(), ds.num_base).ok());
  SearchParams params;
  params.k = 10;
  params.nprobe = 4;
  CheckBatchMatchesPerQuery(index, ds, params);
  CheckBatchEdges(index, ds, params);
}

TEST(BatchSearchTest, FaissIvfFlatMultiThreadMatchesPerQuery) {
  auto ds = TestData();
  faisslike::IvfFlatOptions opt;
  opt.num_clusters = 16;
  opt.sample_ratio = 1.0;
  faisslike::IvfFlatIndex index(ds.dim, opt);
  ASSERT_TRUE(index.Build(ds.base.data(), ds.num_base).ok());
  SearchParams params;
  params.k = 10;
  params.nprobe = 4;
  params.num_threads = 4;  // inter-query parallelism, per-worker heaps
  CheckBatchMatchesPerQuery(index, ds, params);
}

TEST(BatchSearchTest, FaissIvfFlatWithTombstones) {
  auto ds = TestData();
  faisslike::IvfFlatOptions opt;
  opt.num_clusters = 16;
  opt.sample_ratio = 1.0;
  faisslike::IvfFlatIndex index(ds.dim, opt);
  ASSERT_TRUE(index.Build(ds.base.data(), ds.num_base).ok());
  for (int64_t id = 0; id < 100; ++id) {
    ASSERT_TRUE(index.Delete(id).ok());
  }
  SearchParams params;
  params.k = 10;
  params.nprobe = 4;
  CheckBatchMatchesPerQuery(index, ds, params);
  // No tombstoned id may surface from the batched path.
  auto batched =
      index.SearchBatch(ds.queries.data(), ds.num_queries, params)
          .ValueOrDie();
  for (const auto& per_query : batched) {
    for (const auto& nb : per_query) EXPECT_GE(nb.id, 100);
  }
}

TEST(BatchSearchTest, FaissIvfFlatOneSgemmPerBatch) {
  auto ds = TestData();
  faisslike::IvfFlatOptions opt;
  opt.num_clusters = 16;
  opt.sample_ratio = 1.0;
  faisslike::IvfFlatIndex index(ds.dim, opt);
  ASSERT_TRUE(index.Build(ds.base.data(), ds.num_base).ok());
  SearchParams params;
  params.k = 10;
  params.nprobe = 4;
  Profiler profiler;
  params.ctx.profiler = &profiler;
  ASSERT_TRUE(
      index.SearchBatch(ds.queries.data(), ds.num_queries, params).ok());
  // RC#1: bucket selection for the whole batch is ONE SGEMM-decomposed
  // call, not one per query.
  EXPECT_EQ(profiler.Hits("SelectBucketsSgemm"), 1);
}

TEST(BatchSearchTest, FaissIvfFlatRecordsAccounting) {
  auto ds = TestData();
  faisslike::IvfFlatOptions opt;
  opt.num_clusters = 16;
  opt.sample_ratio = 1.0;
  faisslike::IvfFlatIndex index(ds.dim, opt);
  ASSERT_TRUE(index.Build(ds.base.data(), ds.num_base).ok());
  SearchParams params;
  params.k = 10;
  params.nprobe = 4;
  params.num_threads = 3;
  ParallelAccounting acct;
  params.ctx.accounting = &acct;
  ASSERT_TRUE(
      index.SearchBatch(ds.queries.data(), ds.num_queries, params).ok());
  ASSERT_EQ(acct.worker_busy_nanos.size(), 3u);
  int64_t busy = 0;
  for (int64_t w : acct.worker_busy_nanos) busy += w;
  EXPECT_GT(busy, 0);
  // The batch SGEMM is the serial fraction of the model.
  EXPECT_GT(acct.serial_nanos, 0);
}

TEST(BatchSearchTest, FaissIvfPqMatchesPerQuery) {
  auto ds = TestData();
  faisslike::IvfPqOptions opt;
  opt.num_clusters = 16;
  opt.pq_m = 4;
  opt.pq_codes = 32;
  opt.sample_ratio = 1.0;
  faisslike::IvfPqIndex index(ds.dim, opt);
  ASSERT_TRUE(index.Build(ds.base.data(), ds.num_base).ok());
  SearchParams params;
  params.k = 10;
  params.nprobe = 4;
  CheckBatchMatchesPerQuery(index, ds, params);
  CheckBatchEdges(index, ds, params);

  Profiler profiler;
  params.ctx.profiler = &profiler;
  ASSERT_TRUE(
      index.SearchBatch(ds.queries.data(), ds.num_queries, params).ok());
  EXPECT_EQ(profiler.Hits("SelectBucketsSgemm"), 1);
}

TEST(BatchSearchTest, FaissIvfPqRefineMatchesPerQuery) {
  auto ds = TestData();
  faisslike::IvfPqOptions opt;
  opt.num_clusters = 16;
  opt.pq_m = 4;
  opt.pq_codes = 32;
  opt.sample_ratio = 1.0;
  opt.refine_factor = 3;  // exact re-ranking path must batch identically
  faisslike::IvfPqIndex index(ds.dim, opt);
  ASSERT_TRUE(index.Build(ds.base.data(), ds.num_base).ok());
  SearchParams params;
  params.k = 10;
  params.nprobe = 4;
  params.num_threads = 2;
  CheckBatchMatchesPerQuery(index, ds, params);
}

TEST(BatchSearchTest, FaissIvfPqWithTombstones) {
  auto ds = TestData();
  faisslike::IvfPqOptions opt;
  opt.num_clusters = 16;
  opt.pq_m = 4;
  opt.pq_codes = 32;
  opt.sample_ratio = 1.0;
  faisslike::IvfPqIndex index(ds.dim, opt);
  ASSERT_TRUE(index.Build(ds.base.data(), ds.num_base).ok());
  for (int64_t id = 200; id < 260; ++id) {
    ASSERT_TRUE(index.Delete(id).ok());
  }
  SearchParams params;
  params.k = 10;
  params.nprobe = 4;
  CheckBatchMatchesPerQuery(index, ds, params);
}

TEST(BatchSearchTest, PaseFallbackMatchesPerQuery) {
  auto ds = TestData();
  const std::string dir = ::testing::TempDir() + "/batch_pase";
  std::filesystem::remove_all(dir);
  auto smgr = std::make_unique<pgstub::StorageManager>(
      pgstub::StorageManager::Open(dir, 8192).ValueOrDie());
  pgstub::BufferManager bufmgr(smgr.get(), 4096);
  pase::PaseIvfFlatOptions opt;
  opt.num_clusters = 16;
  opt.sample_ratio = 1.0;
  pase::PaseIvfFlatIndex index({smgr.get(), &bufmgr}, ds.dim, opt);
  ASSERT_TRUE(index.Build(ds.base.data(), ds.num_base).ok());
  SearchParams params;
  params.k = 10;
  params.nprobe = 4;
  // PASE has no override: the base-class fallback loops Search one
  // statement at a time (the generalized-engine behavior), so parity is
  // trivially exact — including after deletes.
  CheckBatchMatchesPerQuery(index, ds, params);
  CheckBatchEdges(index, ds, params);
  for (int64_t id = 0; id < 50; ++id) {
    ASSERT_TRUE(index.Delete(id).ok());
  }
  CheckBatchMatchesPerQuery(index, ds, params);
}

}  // namespace
}  // namespace vecdb
