#include "common/profiler.h"

#include <gtest/gtest.h>

namespace vecdb {
namespace {

TEST(ProfilerTest, AccumulatesNanosAndHits) {
  Profiler p;
  p.Add("phase", 100);
  p.Add("phase", 250);
  EXPECT_EQ(p.Nanos("phase"), 350);
  EXPECT_EQ(p.Hits("phase"), 2);
  EXPECT_DOUBLE_EQ(p.Seconds("phase"), 350e-9);
}

TEST(ProfilerTest, UnknownLabelIsZero) {
  Profiler p;
  EXPECT_EQ(p.Nanos("nothing"), 0);
  EXPECT_EQ(p.Hits("nothing"), 0);
}

TEST(ProfilerTest, MergeFoldsCounters) {
  Profiler a, b;
  a.Add("x", 10);
  b.Add("x", 5);
  b.Add("y", 7);
  a.Merge(b);
  EXPECT_EQ(a.Nanos("x"), 15);
  EXPECT_EQ(a.Hits("x"), 2);
  EXPECT_EQ(a.Nanos("y"), 7);
}

TEST(ProfilerTest, ResetClears) {
  Profiler p;
  p.Add("x", 1);
  p.Reset();
  EXPECT_EQ(p.Nanos("x"), 0);
  EXPECT_TRUE(p.entries().empty());
}

volatile double benchmark_dont_optimize_ = 0;

TEST(ProfScopeTest, ChargesElapsedTime) {
  Profiler p;
  {
    ProfScope scope(&p, "work");
    double sink = 0;
    for (int i = 0; i < 100000; ++i) sink += i * 0.5;
    benchmark_dont_optimize_ = sink;
  }
  EXPECT_GT(p.Nanos("work"), 0);
  EXPECT_EQ(p.Hits("work"), 1);
}

TEST(ProfScopeTest, NullProfilerIsSafe) {
  ProfScope scope(nullptr, "ignored");
  SUCCEED();
}

}  // namespace
}  // namespace vecdb
