// QueryContext plumbing: uniform knob validation across all eleven index
// classes and per-query metrics routing.
#include "core/query_context.h"

#include <gtest/gtest.h>

#include <filesystem>

#include <memory>
#include <string>
#include <vector>

#include "core/factory.h"
#include "core/index.h"
#include "datasets/synthetic.h"
#include "obs/metrics.h"
#include "pgstub/bufmgr.h"

namespace vecdb {
namespace {

TEST(QueryContextTest, ContextCarriesObservabilityPointers) {
  Profiler prof;
  ParallelAccounting acct;
  SearchParams params;
  params.ctx.profiler = &prof;
  params.ctx.accounting = &acct;
  const QueryContext ctx = params.Context();
  EXPECT_EQ(ctx.profiler, &prof);
  EXPECT_EQ(ctx.accounting, &acct);
}

TEST(QueryContextTest, LiveMetricsNullWhenDisabled) {
  obs::MetricsRegistry local;
  QueryContext ctx;
  ctx.metrics = &local;
  EXPECT_EQ(ctx.live_metrics(), nullptr);
  local.SetEnabled(true);
  EXPECT_EQ(ctx.live_metrics(), &local);
}

TEST(QueryContextTest, NullMetricsResolvesToGlobal) {
  auto& global = obs::MetricsRegistry::Global();
  const bool was_enabled = global.enabled();
  global.SetEnabled(false);
  QueryContext ctx;
  EXPECT_EQ(ctx.live_metrics(), nullptr);
  global.SetEnabled(true);
  EXPECT_EQ(ctx.live_metrics(), &global);
  global.SetEnabled(was_enabled);
}

// --- Validation + metrics across every index class -----------------------

class AllIndexesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const std::string dir =
        ::testing::TempDir() + "/qctx_" +
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir);
    smgr_ = std::make_unique<pgstub::StorageManager>(
        pgstub::StorageManager::Open(dir, 8192).ValueOrDie());
    bufmgr_ = std::make_unique<pgstub::BufferManager>(smgr_.get(), 2048);
    SyntheticOptions opt;
    opt.dim = 8;
    opt.num_base = 300;
    opt.num_queries = 2;
    ds_ = GenerateClustered(opt);
  }

  Result<std::unique_ptr<VectorIndex>> MakeBuilt(const std::string& method,
                                                 const std::string& engine) {
    IndexSpec spec;
    spec.method = method;
    spec.engine = engine;
    spec.dim = ds_.dim;
    spec.options = {{"clusters", 4}, {"sample_ratio", 1},
                    {"m", 4},        {"pq_codes", 16},
                    {"bnn", 8},      {"efb", 16}};
    spec.rel_prefix = "q" + std::to_string(counter_++);
    VECDB_ASSIGN_OR_RETURN(std::unique_ptr<VectorIndex> index,
                           CreateIndex(spec, {smgr_.get(), bufmgr_.get()}));
    VECDB_RETURN_NOT_OK(index->Build(ds_.base.data(), ds_.num_base));
    return index;
  }

  std::unique_ptr<pgstub::StorageManager> smgr_;
  std::unique_ptr<pgstub::BufferManager> bufmgr_;
  Dataset ds_;
  int counter_ = 0;
};

struct Combo {
  const char* method;
  const char* engine;
};
constexpr Combo kAllCombos[] = {
    {"flat", "faiss"},     {"ivfflat", "faiss"}, {"ivfpq", "faiss"},
    {"ivfsq8", "faiss"},   {"hnsw", "faiss"},    {"ivfflat", "pase"},
    {"ivfpq", "pase"},     {"ivfsq8", "pase"},   {"hnsw", "pase"},
    {"ivfflat", "bridge"}, {"hnsw", "bridge"},
};

TEST_F(AllIndexesTest, KnobValidationIsUniform) {
  for (const auto& combo : kAllCombos) {
    SCOPED_TRACE(std::string(combo.method) + "/" + combo.engine);
    auto index = MakeBuilt(combo.method, combo.engine);
    ASSERT_TRUE(index.ok()) << index.status().ToString();
    const bool is_ivf = std::string(combo.method).rfind("ivf", 0) == 0;
    const bool is_graph = std::string(combo.method) == "hnsw";

    SearchParams good;
    good.k = 5;
    good.nprobe = 4;
    good.efs = 32;
    EXPECT_TRUE((*index)->Search(ds_.queries.data(), good).ok());

    SearchParams zero_k = good;
    zero_k.k = 0;
    auto r = (*index)->Search(ds_.queries.data(), zero_k);
    EXPECT_TRUE(r.status().IsInvalidArgument()) << r.status().ToString();

    SearchParams zero_probe = good;
    zero_probe.nprobe = 0;
    r = (*index)->Search(ds_.queries.data(), zero_probe);
    if (is_ivf) {
      EXPECT_TRUE(r.status().IsInvalidArgument()) << r.status().ToString();
    } else {
      EXPECT_TRUE(r.ok()) << r.status().ToString();
    }

    SearchParams small_efs = good;
    small_efs.k = 20;
    small_efs.efs = 10;
    r = (*index)->Search(ds_.queries.data(), small_efs);
    if (is_graph) {
      EXPECT_TRUE(r.status().IsInvalidArgument()) << r.status().ToString();
    } else {
      EXPECT_TRUE(r.ok()) << r.status().ToString();
    }

    // SearchBatch validates the same way.
    r = Status::OK();
    auto batch = (*index)->SearchBatch(ds_.queries.data(), 2, zero_k);
    EXPECT_TRUE(batch.status().IsInvalidArgument())
        << batch.status().ToString();
  }
}

TEST_F(AllIndexesTest, LocalRegistryCollectsPerQueryCounters) {
  struct Expect {
    obs::Counter queries;
    obs::Counter tuples;
  };
  for (const auto& combo : kAllCombos) {
    SCOPED_TRACE(std::string(combo.method) + "/" + combo.engine);
    auto index = MakeBuilt(combo.method, combo.engine);
    ASSERT_TRUE(index.ok()) << index.status().ToString();

    obs::MetricsRegistry local;
    local.SetEnabled(true);
    SearchParams params;
    params.k = 5;
    params.nprobe = 4;
    params.efs = 32;
    params.ctx.metrics = &local;
    ASSERT_TRUE((*index)->Search(ds_.queries.data(), params).ok());

    const std::string engine = combo.engine;
    Expect e{obs::Counter::kFaissQueries, obs::Counter::kFaissTuplesVisited};
    if (engine == "pase") {
      e = {obs::Counter::kPaseQueries, obs::Counter::kPaseTuplesVisited};
    } else if (engine == "bridge") {
      e = {obs::Counter::kBridgeQueries, obs::Counter::kBridgeTuplesVisited};
    }
    EXPECT_EQ(local.Value(e.queries), 1u);
    // The bridged HNSW delegates its traversal to the in-memory graph, so
    // its tuple traffic lands under faiss.*.
    if (engine == "bridge" && std::string(combo.method) == "hnsw") {
      EXPECT_GT(local.Value(obs::Counter::kFaissTuplesVisited), 0u);
    } else {
      EXPECT_GT(local.Value(e.tuples), 0u);
    }
  }
}

TEST_F(AllIndexesTest, ParallelSearchCountsMatchSerial) {
  auto index = MakeBuilt("ivfflat", "pase");
  ASSERT_TRUE(index.ok()) << index.status().ToString();

  obs::MetricsRegistry serial_reg;
  serial_reg.SetEnabled(true);
  SearchParams params;
  params.k = 5;
  params.nprobe = 4;
  params.ctx.metrics = &serial_reg;
  ASSERT_TRUE((*index)->Search(ds_.queries.data(), params).ok());

  obs::MetricsRegistry parallel_reg;
  parallel_reg.SetEnabled(true);
  params.num_threads = 4;
  params.ctx.metrics = &parallel_reg;
  ASSERT_TRUE((*index)->Search(ds_.queries.data(), params).ok());

  // Worker-local counters must merge to the same totals as one thread.
  EXPECT_EQ(parallel_reg.Value(obs::Counter::kPaseBucketsProbed),
            serial_reg.Value(obs::Counter::kPaseBucketsProbed));
  EXPECT_EQ(parallel_reg.Value(obs::Counter::kPaseTuplesVisited),
            serial_reg.Value(obs::Counter::kPaseTuplesVisited));
}

TEST_F(AllIndexesTest, PageEnginesDriveBufmgrCounters) {
  auto& global = obs::MetricsRegistry::Global();
  const bool was_enabled = global.enabled();
  global.SetEnabled(true);
  global.ResetAll();

  auto index = MakeBuilt("ivfflat", "pase");
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  SearchParams params;
  params.k = 5;
  params.nprobe = 4;
  ASSERT_TRUE((*index)->Search(ds_.queries.data(), params).ok());

  EXPECT_GT(global.Value(obs::Counter::kBufmgrPin), 0u);
  EXPECT_GT(global.Value(obs::Counter::kBufmgrHit), 0u);
  // NewPage pins during the build are neither hits nor misses, so pins
  // bound the sum from above rather than matching it exactly.
  EXPECT_GE(global.Value(obs::Counter::kBufmgrPin),
            global.Value(obs::Counter::kBufmgrHit) +
                global.Value(obs::Counter::kBufmgrMiss));
  EXPECT_GT(global.Value(obs::Counter::kPaseQueries), 0u);
  EXPECT_EQ(global.histogram(obs::Hist::kPaseSearchNanos).TotalCount(), 1u);
  EXPECT_GT(global.Value(obs::Counter::kPaseBuilds), 0u);

  // A pool smaller than the relation forces evictions during the build and
  // re-read misses during the search.
  {
    const std::string dir = ::testing::TempDir() + "/qctx_small_pool";
    std::filesystem::remove_all(dir);
    auto small_smgr = pgstub::StorageManager::Open(dir, 1024).ValueOrDie();
    pgstub::BufferManager small_bufmgr(&small_smgr, 6);
    IndexSpec spec;
    spec.method = "ivfflat";
    spec.engine = "pase";
    spec.dim = ds_.dim;
    spec.options = {{"clusters", 4}, {"sample_ratio", 1}};
    spec.rel_prefix = "small";
    auto small_index =
        CreateIndex(spec, {&small_smgr, &small_bufmgr}).ValueOrDie();
    ASSERT_TRUE(small_index->Build(ds_.base.data(), ds_.num_base).ok());
    const uint64_t misses_before = global.Value(obs::Counter::kBufmgrMiss);
    ASSERT_TRUE(small_index->Search(ds_.queries.data(), params).ok());
    EXPECT_GT(global.Value(obs::Counter::kBufmgrMiss), misses_before);
    EXPECT_GT(global.Value(obs::Counter::kBufmgrEviction), 0u);
  }

  global.ResetAll();
  global.SetEnabled(was_enabled);
}

TEST_F(AllIndexesTest, TombstoneSkipsAreCounted) {
  auto index = MakeBuilt("ivfflat", "faiss");
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  ASSERT_TRUE((*index)->Delete(0).ok());
  ASSERT_TRUE((*index)->Delete(1).ok());

  obs::MetricsRegistry local;
  local.SetEnabled(true);
  SearchParams params;
  params.k = 5;
  params.nprobe = 4;  // all 4 buckets: every tombstone is encountered
  params.ctx.metrics = &local;
  ASSERT_TRUE((*index)->Search(ds_.queries.data(), params).ok());
  EXPECT_EQ(local.Value(obs::Counter::kFaissTombstonesSkipped), 2u);
  EXPECT_EQ(local.Value(obs::Counter::kFaissTuplesVisited),
            local.Value(obs::Counter::kFaissHeapPushes) + 2u);
}

}  // namespace
}  // namespace vecdb
