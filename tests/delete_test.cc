// Delete (amdelete) tests: tombstoned rows disappear from results across
// all indexes and both engines; double deletes and bad ids fail cleanly.
#include <gtest/gtest.h>

#include <filesystem>

#include <memory>

#include "datasets/synthetic.h"
#include "faisslike/flat_index.h"
#include "faisslike/hnsw.h"
#include "faisslike/ivf_flat.h"
#include "faisslike/ivf_pq.h"
#include "faisslike/ivf_sq8.h"
#include "pase/hnsw.h"
#include "pase/ivf_flat.h"
#include "pase/ivf_pq.h"
#include "pase/ivf_sq8.h"

namespace vecdb {
namespace {

Dataset TestData() {
  SyntheticOptions opt;
  opt.dim = 16;
  opt.num_base = 500;
  opt.num_queries = 2;
  return GenerateClustered(opt);
}

bool ResultsContain(const std::vector<Neighbor>& results, int64_t id) {
  for (const auto& nb : results) {
    if (nb.id == id) return true;
  }
  return false;
}

/// Deletes a vector's exact-match target and verifies it vanishes while
/// other results survive.
void CheckDelete(VectorIndex& index, const Dataset& ds,
                 const SearchParams& params) {
  const size_t probe = 123;
  auto before =
      index.Search(ds.base_vector(probe), params).ValueOrDie();
  ASSERT_TRUE(ResultsContain(before, static_cast<int64_t>(probe)))
      << index.Describe();
  const size_t count_before = index.NumVectors();

  ASSERT_TRUE(index.Delete(static_cast<int64_t>(probe)).ok());
  EXPECT_EQ(index.NumVectors(), count_before - 1);
  auto after = index.Search(ds.base_vector(probe), params).ValueOrDie();
  EXPECT_FALSE(ResultsContain(after, static_cast<int64_t>(probe)))
      << index.Describe();
  EXPECT_FALSE(after.empty());

  // Double delete fails.
  EXPECT_FALSE(index.Delete(static_cast<int64_t>(probe)).ok());

  // Never-inserted ids are NotFound and must not perturb the vector count.
  // (TombstoneSet::Mark accepts any id, so an unvalidated Delete used to
  // silently shrink NumVectors() — and wrap size_t below zero once more
  // bogus ids than live rows were "deleted".)
  const size_t count_after = index.NumVectors();
  EXPECT_TRUE(index.Delete(987654321).IsNotFound()) << index.Describe();
  EXPECT_TRUE(index.Delete(-7).IsNotFound()) << index.Describe();
  EXPECT_EQ(index.NumVectors(), count_after) << index.Describe();
}

TEST(DeleteTest, FaissIvfFlat) {
  auto ds = TestData();
  faisslike::IvfFlatOptions opt;
  opt.num_clusters = 8;
  opt.sample_ratio = 1.0;
  faisslike::IvfFlatIndex index(ds.dim, opt);
  ASSERT_TRUE(index.Build(ds.base.data(), ds.num_base).ok());
  SearchParams params;
  params.k = 10;
  params.nprobe = 8;
  CheckDelete(index, ds, params);
}

TEST(DeleteTest, FaissIvfPq) {
  auto ds = TestData();
  faisslike::IvfPqOptions opt;
  opt.num_clusters = 8;
  opt.pq_m = 4;
  opt.pq_codes = 16;
  opt.sample_ratio = 1.0;
  faisslike::IvfPqIndex index(ds.dim, opt);
  ASSERT_TRUE(index.Build(ds.base.data(), ds.num_base).ok());
  // ADC distances are approximate, so the exact-match probe of CheckDelete
  // is not guaranteed to rank; exercise the accounting contract directly.
  const size_t count_before = index.NumVectors();
  EXPECT_TRUE(index.Delete(987654321).IsNotFound());
  EXPECT_TRUE(index.Delete(-7).IsNotFound());
  EXPECT_EQ(index.NumVectors(), count_before);
  ASSERT_TRUE(index.Delete(123).ok());
  EXPECT_EQ(index.NumVectors(), count_before - 1);
  EXPECT_TRUE(index.Delete(123).IsNotFound());
}

TEST(DeleteTest, FaissFlat) {
  auto ds = TestData();
  faisslike::FlatIndex index(ds.dim);
  ASSERT_TRUE(index.Build(ds.base.data(), ds.num_base).ok());
  SearchParams params;
  params.k = 10;
  CheckDelete(index, ds, params);
}

TEST(DeleteTest, NeverInsertedIdDoesNotUnderflowCount) {
  auto ds = TestData();
  faisslike::IvfFlatOptions opt;
  opt.num_clusters = 8;
  opt.sample_ratio = 1.0;
  faisslike::IvfFlatIndex index(ds.dim, opt);
  ASSERT_TRUE(index.Build(ds.base.data(), ds.num_base).ok());
  // The regression scenario: more bogus deletes than live rows. Before id
  // validation, each Mark shrank NumVectors(); the count wrapped below
  // zero once the tombstone set outgrew the row count.
  for (int64_t bogus = 1000000; bogus < 1000000 + 600; ++bogus) {
    EXPECT_TRUE(index.Delete(bogus).IsNotFound());
  }
  EXPECT_EQ(index.NumVectors(), ds.num_base);
  index.CheckInvariants();
}

TEST(DeleteTest, FaissIvfSq8) {
  auto ds = TestData();
  faisslike::IvfSq8Options opt;
  opt.num_clusters = 8;
  opt.sample_ratio = 1.0;
  faisslike::IvfSq8Index index(ds.dim, opt);
  ASSERT_TRUE(index.Build(ds.base.data(), ds.num_base).ok());
  SearchParams params;
  params.k = 10;
  params.nprobe = 8;
  CheckDelete(index, ds, params);
}

TEST(DeleteTest, FaissHnsw) {
  auto ds = TestData();
  faisslike::HnswOptions opt;
  opt.bnn = 8;
  opt.efb = 20;
  faisslike::HnswIndex index(ds.dim, opt);
  ASSERT_TRUE(index.Build(ds.base.data(), ds.num_base).ok());
  SearchParams params;
  params.k = 10;
  params.efs = 50;
  CheckDelete(index, ds, params);
  // Out-of-range ids are NotFound for the graph.
  EXPECT_TRUE(index.Delete(99999).IsNotFound());
  EXPECT_TRUE(index.Delete(-1).IsNotFound());
}

TEST(DeleteTest, HnswSurvivesManyDeletes) {
  auto ds = TestData();
  faisslike::HnswOptions opt;
  opt.bnn = 8;
  opt.efb = 20;
  faisslike::HnswIndex index(ds.dim, opt);
  ASSERT_TRUE(index.Build(ds.base.data(), ds.num_base).ok());
  // Delete a third of the nodes; search must still return k live results.
  for (int64_t id = 0; id < 160; ++id) {
    ASSERT_TRUE(index.Delete(id).ok());
  }
  SearchParams params;
  params.k = 10;
  params.efs = 50;
  auto results = index.Search(ds.query_vector(0), params).ValueOrDie();
  EXPECT_EQ(results.size(), 10u);
  for (const auto& nb : results) EXPECT_GE(nb.id, 160);
}

class PaseDeleteTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const std::string dir =
        ::testing::TempDir() + "/delete_" +
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir);
    smgr_ = std::make_unique<pgstub::StorageManager>(
        pgstub::StorageManager::Open(dir, 8192).ValueOrDie());
    bufmgr_ = std::make_unique<pgstub::BufferManager>(smgr_.get(), 4096);
  }
  pase::PaseEnv Env() { return {smgr_.get(), bufmgr_.get()}; }

  std::unique_ptr<pgstub::StorageManager> smgr_;
  std::unique_ptr<pgstub::BufferManager> bufmgr_;
};

TEST_F(PaseDeleteTest, PaseIvfFlat) {
  auto ds = TestData();
  pase::PaseIvfFlatOptions opt;
  opt.num_clusters = 8;
  opt.sample_ratio = 1.0;
  pase::PaseIvfFlatIndex index(Env(), ds.dim, opt);
  ASSERT_TRUE(index.Build(ds.base.data(), ds.num_base).ok());
  SearchParams params;
  params.k = 10;
  params.nprobe = 8;
  CheckDelete(index, ds, params);
}

TEST_F(PaseDeleteTest, PaseIvfPq) {
  auto ds = TestData();
  pase::PaseIvfPqOptions opt;
  opt.num_clusters = 8;
  opt.pq_m = 4;
  opt.pq_codes = 16;
  opt.sample_ratio = 1.0;
  pase::PaseIvfPqIndex index(Env(), ds.dim, opt);
  ASSERT_TRUE(index.Build(ds.base.data(), ds.num_base).ok());
  const size_t count_before = index.NumVectors();
  EXPECT_TRUE(index.Delete(987654321).IsNotFound());
  EXPECT_TRUE(index.Delete(-7).IsNotFound());
  EXPECT_EQ(index.NumVectors(), count_before);
  ASSERT_TRUE(index.Delete(123).ok());
  EXPECT_EQ(index.NumVectors(), count_before - 1);
  EXPECT_TRUE(index.Delete(123).IsNotFound());
}

TEST_F(PaseDeleteTest, PaseIvfSq8) {
  auto ds = TestData();
  pase::PaseIvfSq8Options opt;
  opt.num_clusters = 8;
  opt.sample_ratio = 1.0;
  pase::PaseIvfSq8Index index(Env(), ds.dim, opt);
  ASSERT_TRUE(index.Build(ds.base.data(), ds.num_base).ok());
  SearchParams params;
  params.k = 10;
  params.nprobe = 8;
  CheckDelete(index, ds, params);
}

TEST_F(PaseDeleteTest, VacuumedIdStaysDeleted) {
  auto ds = TestData();
  pase::PaseIvfFlatOptions opt;
  opt.num_clusters = 8;
  opt.sample_ratio = 1.0;
  pase::PaseIvfFlatIndex index(Env(), ds.dim, opt);
  ASSERT_TRUE(index.Build(ds.base.data(), ds.num_base).ok());
  ASSERT_TRUE(index.Delete(5).ok());
  ASSERT_TRUE(index.Vacuum().ok());
  // Vacuum rewrote the chains without row 5 and cleared the tombstones; a
  // second Delete must see the row as gone, not re-mark it (which would
  // shrink NumVectors() for a row that no longer exists).
  const size_t count = index.NumVectors();
  EXPECT_TRUE(index.Delete(5).IsNotFound());
  EXPECT_EQ(index.NumVectors(), count);
}

TEST_F(PaseDeleteTest, PaseHnsw) {
  auto ds = TestData();
  pase::PaseHnswOptions opt;
  opt.bnn = 8;
  opt.efb = 20;
  pase::PaseHnswIndex index(Env(), ds.dim, opt);
  ASSERT_TRUE(index.Build(ds.base.data(), ds.num_base).ok());
  SearchParams params;
  params.k = 10;
  params.efs = 50;
  CheckDelete(index, ds, params);
}

TEST(DeleteTest, SaveRefusesTombstonedIndex) {
  auto ds = TestData();
  faisslike::IvfFlatOptions opt;
  opt.num_clusters = 8;
  opt.sample_ratio = 1.0;
  faisslike::IvfFlatIndex index(ds.dim, opt);
  ASSERT_TRUE(index.Build(ds.base.data(), ds.num_base).ok());
  ASSERT_TRUE(index.Delete(1).ok());
  EXPECT_FALSE(index.Save(::testing::TempDir() + "/tomb.idx").ok());
}

}  // namespace
}  // namespace vecdb
