#include <gtest/gtest.h>

#include <filesystem>

#include <memory>

#include "datasets/ground_truth.h"
#include "datasets/synthetic.h"
#include "pase/hnsw.h"
#include "pase/ivf_flat.h"
#include "pase/ivf_pq.h"

namespace vecdb::pase {
namespace {

class PaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/pase_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    smgr_ = std::make_unique<pgstub::StorageManager>(
        pgstub::StorageManager::Open(dir_, 8192).ValueOrDie());
    bufmgr_ = std::make_unique<pgstub::BufferManager>(smgr_.get(), 8192);

    SyntheticOptions opt;
    opt.dim = 32;
    opt.num_base = 1500;
    opt.num_queries = 15;
    opt.num_natural_clusters = 16;
    ds_ = GenerateClustered(opt);
    ComputeGroundTruth(&ds_, 10, Metric::kL2);
  }

  PaseEnv Env() { return {smgr_.get(), bufmgr_.get()}; }

  double MeasureRecall(const VectorIndex& index, const SearchParams& params) {
    std::vector<std::vector<Neighbor>> results;
    for (size_t q = 0; q < ds_.num_queries; ++q) {
      results.push_back(
          index.Search(ds_.query_vector(q), params).ValueOrDie());
    }
    return MeanRecallAtK(results, ds_.ground_truth, 10);
  }

  std::string dir_;
  std::unique_ptr<pgstub::StorageManager> smgr_;
  std::unique_ptr<pgstub::BufferManager> bufmgr_;
  Dataset ds_;
};

TEST_F(PaseTest, IvfFlatRecallAndExactness) {
  PaseIvfFlatOptions opt;
  opt.num_clusters = 32;
  opt.sample_ratio = 0.5;
  PaseIvfFlatIndex index(Env(), ds_.dim, opt);
  ASSERT_TRUE(index.Build(ds_.base.data(), ds_.num_base).ok());
  SearchParams params;
  params.k = 10;
  params.nprobe = 32;  // all buckets => exact
  EXPECT_DOUBLE_EQ(MeasureRecall(index, params), 1.0);
  EXPECT_EQ(index.NumVectors(), ds_.num_base);
}

TEST_F(PaseTest, IvfFlatSizeIsPageMultiple) {
  PaseIvfFlatOptions opt;
  opt.num_clusters = 16;
  PaseIvfFlatIndex index(Env(), ds_.dim, opt);
  ASSERT_TRUE(index.Build(ds_.base.data(), ds_.num_base).ok());
  EXPECT_GT(index.SizeBytes(), 0u);
  EXPECT_EQ(index.SizeBytes() % 8192, 0u);
}

TEST_F(PaseTest, IvfFlatParallelMatchesSerial) {
  PaseIvfFlatOptions opt;
  opt.num_clusters = 32;
  PaseIvfFlatIndex index(Env(), ds_.dim, opt);
  ASSERT_TRUE(index.Build(ds_.base.data(), ds_.num_base).ok());
  SearchParams serial, parallel;
  serial.k = parallel.k = 10;
  serial.nprobe = parallel.nprobe = 16;
  parallel.num_threads = 4;
  ParallelAccounting acct;
  parallel.ctx.accounting = &acct;
  for (size_t q = 0; q < 5; ++q) {
    auto rs = index.Search(ds_.query_vector(q), serial).ValueOrDie();
    auto rp = index.Search(ds_.query_vector(q), parallel).ValueOrDie();
    EXPECT_EQ(rs, rp);
  }
  // The locked global heap must register serialized time (RC#3).
  EXPECT_GT(acct.serial_nanos, 0);
}

TEST_F(PaseTest, IvfFlatProfilerSeesPaperPhases) {
  PaseIvfFlatOptions opt;
  opt.num_clusters = 16;
  PaseIvfFlatIndex index(Env(), ds_.dim, opt);
  ASSERT_TRUE(index.Build(ds_.base.data(), ds_.num_base).ok());
  Profiler profiler;
  SearchParams params;
  params.k = 10;
  params.nprobe = 8;
  params.ctx.profiler = &profiler;
  ASSERT_TRUE(index.Search(ds_.query_vector(0), params).ok());
  // Table V categories must all be present for PASE.
  EXPECT_GT(profiler.Nanos("fvec_L2sqr"), 0);
  EXPECT_GT(profiler.Nanos("TupleAccess"), 0);
  EXPECT_GT(profiler.Nanos("MinHeap"), 0);
}

TEST_F(PaseTest, PgvectorModeSameResultsSlowerPath) {
  PaseIvfFlatOptions opt;
  opt.num_clusters = 16;
  opt.rel_prefix = "pg_a";
  PaseIvfFlatIndex pase(Env(), ds_.dim, opt);
  opt.pgvector_mode = true;
  opt.rel_prefix = "pg_b";
  PaseIvfFlatIndex pgv(Env(), ds_.dim, opt);
  ASSERT_TRUE(pase.Build(ds_.base.data(), ds_.num_base).ok());
  ASSERT_TRUE(pgv.Build(ds_.base.data(), ds_.num_base).ok());
  SearchParams params;
  params.k = 10;
  params.nprobe = 8;
  for (size_t q = 0; q < 5; ++q) {
    EXPECT_EQ(pase.Search(ds_.query_vector(q), params).ValueOrDie(),
              pgv.Search(ds_.query_vector(q), params).ValueOrDie());
  }
}

TEST_F(PaseTest, IvfPqRecall) {
  PaseIvfPqOptions opt;
  opt.num_clusters = 16;
  opt.pq_m = 8;
  opt.pq_codes = 64;
  opt.sample_ratio = 0.3;
  PaseIvfPqIndex index(Env(), ds_.dim, opt);
  ASSERT_TRUE(index.Build(ds_.base.data(), ds_.num_base).ok());
  SearchParams params;
  params.k = 10;
  params.nprobe = 16;
  EXPECT_GE(MeasureRecall(index, params), 0.4);
}

TEST_F(PaseTest, HnswRecall) {
  PaseHnswOptions opt;
  opt.bnn = 16;
  opt.efb = 40;
  PaseHnswIndex index(Env(), ds_.dim, opt);
  ASSERT_TRUE(index.Build(ds_.base.data(), ds_.num_base).ok());
  SearchParams params;
  params.k = 10;
  params.efs = 100;
  EXPECT_GE(MeasureRecall(index, params), 0.85);
}

TEST_F(PaseTest, HnswUsesOnePagePerVertex) {
  // RC#4: the neighbor relation must hold >= one page per vertex.
  PaseHnswOptions opt;
  opt.bnn = 8;
  opt.rel_prefix = "hnsw_pages";
  PaseHnswIndex index(Env(), ds_.dim, opt);
  const size_t n = 300;
  ASSERT_TRUE(index.Build(ds_.base.data(), n).ok());
  auto nbr_rel = smgr_->FindRelation("hnsw_pages_nbr").ValueOrDie();
  EXPECT_GE(*smgr_->NumBlocks(nbr_rel), n);
}

TEST_F(PaseTest, HnswBuildProfilerSeesTable3Phases) {
  Profiler profiler;
  PaseHnswOptions opt;
  opt.bnn = 8;
  opt.efb = 20;
  opt.profiler = &profiler;
  PaseHnswIndex index(Env(), ds_.dim, opt);
  ASSERT_TRUE(index.Build(ds_.base.data(), 400).ok());
  EXPECT_GT(profiler.Nanos("SearchNbToAdd"), 0);
  EXPECT_GT(profiler.Nanos("AddLink"), 0);
  EXPECT_GT(profiler.Nanos("ShrinkNbList"), 0);
  // Fig 8 sub-phases inside SearchNbToAdd.
  EXPECT_GT(profiler.Nanos("TupleAccess"), 0);
  EXPECT_GT(profiler.Nanos("HVTGet"), 0);
  EXPECT_GT(profiler.Nanos("pasepfirst"), 0);
  EXPECT_GT(profiler.Nanos("fvec_L2sqr"), 0);
}

TEST_F(PaseTest, ErrorPaths) {
  PaseIvfFlatOptions opt;
  opt.num_clusters = 4;
  PaseIvfFlatIndex unbuilt(Env(), ds_.dim, opt);
  SearchParams params;
  EXPECT_FALSE(unbuilt.Search(ds_.query_vector(0), params).ok());
  PaseIvfFlatIndex bad(PaseEnv{}, ds_.dim, opt);
  EXPECT_FALSE(bad.Build(ds_.base.data(), 100).ok());
}

TEST(HashVisitedTableTest, GetAndSetSemantics) {
  HashVisitedTable table;
  EXPECT_FALSE(table.GetAndSet(5));
  EXPECT_TRUE(table.GetAndSet(5));
  EXPECT_FALSE(table.GetAndSet(6));
  table.Reset();
  EXPECT_FALSE(table.GetAndSet(5));
}

TEST(NeighborTupleTest, PaperReportedLayout) {
  EXPECT_EQ(sizeof(PaseTuple), 8u);
  EXPECT_EQ(sizeof(HnswGlobalId), 12u);
  EXPECT_EQ(sizeof(HnswNeighborTuple), 24u);  // alignment padding included
}

}  // namespace
}  // namespace vecdb::pase
