#include "common/thread_annotations.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <thread>
#include <vector>

namespace vecdb {
namespace {

// The wrappers must behave exactly like the std primitives they wrap —
// these tests pin the runtime semantics; the TSA negative-compilation
// probes under tests/tsa_negative/ pin the compile-time side.

TEST(MutexTest, LockExcludesAndTryLockObservesIt) {
  Mutex mu;
  mu.Lock();
  std::atomic<bool> other_got_it{false};
  std::thread t([&] {
    if (mu.TryLock()) {
      other_got_it = true;
      mu.Unlock();
    }
  });
  t.join();
  EXPECT_FALSE(other_got_it.load());
  mu.Unlock();
  EXPECT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexTest, MutexLockGuardsCounterAcrossThreads) {
  Mutex mu;
  int counter = 0;  // guarded by mu (by convention in this test)
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  MutexLock lock(mu);
  EXPECT_EQ(counter, 8000);
}

TEST(MutexTest, WaitReleasesAndReacquires) {
  // Producer/consumer over MutexLock::Wait — the consumer must block with
  // the mutex released (else the producer could never set the flag) and
  // hold it again when Wait returns.
  Mutex mu;
  std::condition_variable cv;
  bool ready = false;
  int payload = 0;

  std::thread consumer([&] {
    MutexLock lock(mu);
    while (!ready) lock.Wait(cv);
    EXPECT_EQ(payload, 42);
  });
  {
    MutexLock lock(mu);
    payload = 42;
    ready = true;
  }
  cv.notify_one();
  consumer.join();
}

TEST(SharedMutexTest, ReadersShareWritersExclude) {
  SharedMutex mu;
  mu.ReaderLock();
  // A second reader gets in while the first holds shared...
  EXPECT_TRUE(mu.ReaderTryLock());
  mu.ReaderUnlock();
  // ...but a writer does not.
  EXPECT_FALSE(mu.TryLock());
  mu.ReaderUnlock();
  EXPECT_TRUE(mu.TryLock());
  // And with the writer in, readers are shut out.
  EXPECT_FALSE(mu.ReaderTryLock());
  mu.Unlock();
}

TEST(SharedMutexTest, ScopedReaderAndWriterLocks) {
  SharedMutex mu;
  int value = 0;  // guarded by mu (by convention in this test)
  std::atomic<int> sum{0};
  {
    WriterMutexLock lock(mu);
    value = 7;
  }
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      ReaderMutexLock lock(mu);
      sum.fetch_add(value);
    });
  }
  for (auto& t : readers) t.join();
  EXPECT_EQ(sum.load(), 28);
}

TEST(MutexTest, NativeHandleWorksWithUniqueLock) {
  // native() exists for the condition-variable idiom; a unique_lock over it
  // must interoperate with the wrapper's own Lock/TryLock.
  Mutex mu;
  {
    // Naming the raw type is the point here: native() hands back the
    // wrapped std::mutex for unique_lock/cv interop.
    std::unique_lock<std::mutex> lock(mu.native());  // lint-allow:raw-mutex
    EXPECT_FALSE(mu.TryLock());
  }
  EXPECT_TRUE(mu.TryLock());
  mu.Unlock();
}

}  // namespace
}  // namespace vecdb
