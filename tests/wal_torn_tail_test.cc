// Property test for WAL torn-tail handling: a crash can cut the log at ANY
// byte. For every possible cut point of a multi-record log, replay and
// recovery must never error, must deliver exactly the records whose frames
// are fully intact, and the reopened log must append cleanly after the
// surviving prefix without reusing LSNs.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <vector>

#include "pgstub/wal.h"

namespace vecdb::pgstub {
namespace {

std::string TestLog(const char* suffix) {
  std::string path = ::testing::TempDir() + "/wal_torn_" +
                     ::testing::UnitTest::GetInstance()
                         ->current_test_info()
                         ->name() +
                     "_" + suffix + ".wal";
  std::remove(path.c_str());
  std::remove((path + ".new").c_str());
  return path;
}

struct BuiltLog {
  std::vector<char> bytes;          ///< the intact log image
  std::vector<uint64_t> frame_end;  ///< end offset of record i's frame
};

/// Writes a log of `n` distinct full-page records (page size `psize`) plus
/// a tombstone, recording each record's frame-end offset by observing the
/// file size after every append.
BuiltLog BuildLog(const std::string& path, int n, uint32_t psize) {
  BuiltLog out;
  auto wal = std::move(WalManager::Open(path)).ValueOrDie();
  std::vector<char> page(psize);
  for (int i = 0; i < n; ++i) {
    page.assign(psize, static_cast<char>(0x10 + i));
    EXPECT_TRUE(wal.LogFullPage(1, i, page.data(), psize).ok());
    out.frame_end.push_back(wal.size_bytes());
  }
  EXPECT_TRUE(wal.LogTombstone(1, 424242).ok());
  out.frame_end.push_back(wal.size_bytes());
  EXPECT_TRUE(wal.Flush().ok());

  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  out.bytes.resize(static_cast<size_t>(std::ftell(f)));
  std::fseek(f, 0, SEEK_SET);
  EXPECT_EQ(std::fread(out.bytes.data(), 1, out.bytes.size(), f),
            out.bytes.size());
  std::fclose(f);
  return out;
}

void WriteTruncated(const std::string& path, const BuiltLog& log,
                    size_t cut) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(log.bytes.data(), 1, cut, f), cut);
  std::fclose(f);
}

/// Records with frame_end <= cut are fully intact; everything after is a
/// torn tail that must vanish silently.
size_t IntactPrefix(const BuiltLog& log, size_t cut) {
  size_t n = 0;
  while (n < log.frame_end.size() && log.frame_end[n] <= cut) ++n;
  return n;
}

TEST(WalTornTailTest, EveryTruncationOffsetReplaysTheIntactPrefix) {
  const std::string master = TestLog("master");
  // Small pages keep the log a few KB so every-offset stays fast.
  const BuiltLog log = BuildLog(master, 5, 64);
  const std::string path = TestLog("cut");

  for (size_t cut = 0; cut <= log.bytes.size(); ++cut) {
    WriteTruncated(path, log, cut);
    const size_t want = IntactPrefix(log, cut);
    std::vector<WalRecord> seen;
    Status s = WalManager::Replay(path, [&](const WalRecord& record) {
      seen.push_back(record);
      return Status::OK();
    });
    ASSERT_TRUE(s.ok()) << "cut at " << cut << ": " << s.ToString();
    ASSERT_EQ(seen.size(), want) << "cut at " << cut;
    for (size_t i = 0; i < seen.size(); ++i) {
      EXPECT_EQ(seen[i].lsn, i + 1) << "cut at " << cut;
      if (seen[i].type == WalRecordType::kFullPage) {
        EXPECT_EQ(seen[i].payload[0], static_cast<char>(0x10 + i));
      }
    }
  }
  std::remove(master.c_str());
  std::remove(path.c_str());
}

TEST(WalTornTailTest, EveryTruncationOffsetReopensAndAppends) {
  const std::string master = TestLog("master");
  const BuiltLog log = BuildLog(master, 5, 64);
  const std::string path = TestLog("cut");
  std::vector<char> page(64, 0x7F);

  for (size_t cut = 0; cut <= log.bytes.size(); ++cut) {
    WriteTruncated(path, log, cut);
    const size_t want = IntactPrefix(log, cut);
    auto opened = WalManager::Open(path);
    ASSERT_TRUE(opened.ok()) << "cut at " << cut;
    auto wal = std::move(*opened);
    // next_lsn is strictly greater than every surviving record's LSN.
    ASSERT_EQ(wal.next_lsn(), want + 1) << "cut at " << cut;
    // The torn tail was truncated on open; the next append lands on a
    // clean frame boundary and replays along with the prefix.
    ASSERT_TRUE(wal.LogFullPage(2, 0, page.data(), 64).ok());
    ASSERT_TRUE(wal.Flush().ok());
    size_t seen = 0;
    Lsn last_lsn = 0;
    ASSERT_TRUE(WalManager::Replay(path, [&](const WalRecord& record) {
                  ++seen;
                  last_lsn = record.lsn;
                  return Status::OK();
                }).ok());
    ASSERT_EQ(seen, want + 1) << "cut at " << cut;
    ASSERT_EQ(last_lsn, want + 1) << "cut at " << cut;
  }
  std::remove(master.c_str());
  std::remove(path.c_str());
}

TEST(WalTornTailTest, TruncationInsideFileHeaderIsAnEmptyLog) {
  // Cuts inside the 32-byte file header leave no valid header; Open must
  // treat that as a brand-new log and rewrite it, and Replay must deliver
  // nothing rather than erroring.
  const std::string master = TestLog("master");
  const BuiltLog log = BuildLog(master, 2, 64);
  const std::string path = TestLog("cut");
  std::vector<char> page(64, 0x3C);

  for (size_t cut = 0; cut < 32; ++cut) {
    WriteTruncated(path, log, cut);
    size_t seen = 0;
    ASSERT_TRUE(WalManager::Replay(path, [&](const WalRecord&) {
                  ++seen;
                  return Status::OK();
                }).ok());
    EXPECT_EQ(seen, 0u) << "cut at " << cut;
    auto opened = WalManager::Open(path);
    ASSERT_TRUE(opened.ok()) << "cut at " << cut;
    auto wal = std::move(*opened);
    EXPECT_EQ(wal.next_lsn(), 1u);
    ASSERT_TRUE(wal.LogFullPage(1, 0, page.data(), 64).ok());
    ASSERT_TRUE(wal.Flush().ok());
  }
  std::remove(master.c_str());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace vecdb::pgstub
