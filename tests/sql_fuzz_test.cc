// SQL robustness sweep: malformed and adversarial statements must return
// clean Status errors — never crash, never corrupt the catalog.
#include <gtest/gtest.h>

#include <filesystem>

#include <string>
#include <vector>

#include "common/random.h"
#include "sql/database.h"
#include "sql/session.h"
#include "sql/lexer.h"
#include "sql/parser.h"

namespace vecdb::sql {
namespace {

TEST(SqlFuzzTest, MalformedStatementsAllReturnErrors) {
  const std::vector<std::string> bad = {
      "",
      ";",
      "SELECT",
      "SELECT id",
      "SELECT id FROM",
      "SELECT id FROM t ORDER",
      "SELECT id FROM t ORDER BY",
      "SELECT id FROM t ORDER BY vec",
      "SELECT id FROM t ORDER BY vec <->",
      "SELECT id FROM t ORDER BY vec <-> '1,2' LIMIT",
      "SELECT id FROM t ORDER BY vec <-> '1,2' LIMIT -3",
      "SELECT id FROM t ORDER BY vec <-> '' LIMIT 1",
      "SELECT id FROM t ORDER BY vec <-> 'a,b,c' LIMIT 1",
      "CREATE",
      "CREATE TABLE",
      "CREATE TABLE t",
      "CREATE TABLE t (",
      "CREATE TABLE t (id)",
      "CREATE TABLE t (id int)",
      "CREATE TABLE t (id int, vec)",
      "CREATE TABLE t (id int, vec float)",
      "CREATE TABLE t (id int, vec float[)",
      "CREATE TABLE t (id int, vec float[0])",
      "CREATE INDEX ON t USING ivfflat (vec)",
      "CREATE INDEX i ON USING ivfflat (vec)",
      "CREATE INDEX i ON t USING (vec)",
      "CREATE INDEX i ON t USING ivfflat ()",
      "CREATE INDEX i ON t USING ivfflat (vec) WITH",
      "CREATE INDEX i ON t USING ivfflat (vec) WITH ()",
      "CREATE INDEX i ON t USING ivfflat (vec) WITH (clusters)",
      "CREATE INDEX i ON t USING ivfflat (vec) WITH (clusters=)",
      "INSERT",
      "INSERT INTO",
      "INSERT INTO t",
      "INSERT INTO t VALUES",
      "INSERT INTO t VALUES ()",
      "INSERT INTO t VALUES (1)",
      "INSERT INTO t VALUES (1,)",
      "INSERT INTO t VALUES (1, 2)",
      "INSERT INTO t VALUES (1, '1,2'",
      "DELETE",
      "DELETE FROM",
      "DELETE FROM t",
      "DELETE FROM t WHERE",
      "DELETE FROM t WHERE id",
      "DELETE FROM t WHERE id =",
      "DROP",
      "DROP VIEW x",
      "EXPLAIN",
      "EXPLAIN DROP TABLE t",
      "SELECT id FROM t ORDER BY vec < '1' LIMIT 1",
      "SELECT id FROM t ORDER BY vec @-> '1' LIMIT 1",
      "SELECT id FROM t ORDER BY vec <-> '1' LIMIT 1 extra",
      "'just a string'",
      "12345",
      "(((((",
  };
  for (const auto& statement : bad) {
    auto parsed = Parse(statement);
    EXPECT_FALSE(parsed.ok()) << "accepted: " << statement;
  }
}

TEST(SqlFuzzTest, MalformedWhereClausesAllReturnErrors) {
  const std::string tail = " ORDER BY vec <-> '1,2' LIMIT 1";
  const std::vector<std::string> bad_where = {
      "price",            // no operator
      "price <",          // no value
      "price < 'x'",      // non-integer comparand
      "price < vec",      // identifier comparand
      "< 5",              // no column
      "price = 1 AND",    // dangling conjunction
      "price = 1 OR",     // dangling disjunction
      "AND price = 1",    // leading conjunction
      "price IN",         // no list
      "price IN (",       // unterminated list
      "price IN ()",      // empty list
      "price IN (1,)",    // trailing comma
      "price IN (1 2)",   // missing comma
      "(price = 1",       // unbalanced parens
      "price = 1)",       // stray close paren
      "price <-> 5",      // distance op is not a comparison
  };
  for (const auto& where : bad_where) {
    const std::string select = "SELECT id FROM t WHERE " + where + tail;
    EXPECT_FALSE(Parse(select).ok()) << "accepted: " << select;
    const std::string del = "DELETE FROM t WHERE " + where;
    EXPECT_FALSE(Parse(del).ok()) << "accepted: " << del;
  }
}

TEST(SqlFuzzTest, WhereTokenSoupNeverCrashes) {
  // Random predicate-shaped token soup spliced into otherwise valid
  // SELECT and DELETE statements; every outcome must be a clean Status.
  const std::vector<std::string> fragments = {
      "price", "tag", "id",  "AND", "OR", "IN", "(", ")",  ",",
      "=",     "<",   "<=",  ">",   ">=", "<>", "!=", "1", "-3",
      "42",    "'1,2'",
  };
  const std::string dir = ::testing::TempDir() + "/fuzz_where_db";
  std::filesystem::remove_all(dir);
  auto db = std::move(MiniDatabase::Open(dir)).ValueOrDie();
  auto session = db->CreateSession();
  ASSERT_TRUE(
      session->Execute("CREATE TABLE t (id int, vec float[2], price int, "
                  "tag int)")
          .ok());
  ASSERT_TRUE(session->Execute("INSERT INTO t VALUES (1, '1,2', 10, 0)").ok());

  Rng rng(4242);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string where;
    const size_t len = 1 + rng.Uniform(10);
    for (size_t i = 0; i < len; ++i) {
      where += fragments[rng.Uniform(fragments.size())];
      where += " ";
    }
    (void)session->Execute("SELECT id FROM t WHERE " + where +
                      "ORDER BY vec <-> '1,2' LIMIT 1");
    (void)session->Execute("DELETE FROM t WHERE " + where);
  }
  // The table must still answer queries (row 1 may legally have been
  // deleted by a soup predicate that parsed; re-insert to check health).
  (void)session->Execute("INSERT INTO t VALUES (2, '1,2', 11, 1)");
  auto check =
      session->Execute("SELECT id FROM t ORDER BY vec <-> '1,2' LIMIT 1");
  ASSERT_TRUE(check.ok()) << check.status().ToString();
  ASSERT_FALSE(check->rows.empty());
}

TEST(SqlFuzzTest, RandomTokenSoupNeverCrashes) {
  // Splice random fragments of valid SQL into statements; every outcome
  // must be a Status, and valid parses must round-trip through Execute.
  const std::vector<std::string> fragments = {
      "SELECT", "id",      "FROM",   "t",       "ORDER",    "BY",
      "vec",    "<->",     "'1,2'",  "LIMIT",   "10",       "CREATE",
      "TABLE",  "(",       ")",      "int",     "float",    "[",
      "]",      ",",       "INSERT", "INTO",    "VALUES",   "1",
      "INDEX",  "USING",   "ivfflat", "WITH",   "=",        "DROP",
      "DELETE", "WHERE",   ";",      "*",       "OPTIONS",  "'0.5'",
  };
  const std::string dir = ::testing::TempDir() + "/fuzz_db";
  std::filesystem::remove_all(dir);
  auto db = std::move(MiniDatabase::Open(dir)).ValueOrDie();
  auto session = db->CreateSession();
  ASSERT_TRUE(session->Execute("CREATE TABLE t (id int, vec float[2])").ok());
  ASSERT_TRUE(session->Execute("INSERT INTO t VALUES (1, '1,2')").ok());

  Rng rng(2024);
  int valid = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    std::string statement;
    const size_t len = 1 + rng.Uniform(12);
    for (size_t i = 0; i < len; ++i) {
      statement += fragments[rng.Uniform(fragments.size())];
      statement += " ";
    }
    auto result = session->Execute(statement);  // must not crash or corrupt
    if (result.ok()) ++valid;
  }
  // The soup occasionally forms valid statements; the catalog must still
  // answer a real query afterwards.
  auto check = session->Execute("SELECT id FROM t ORDER BY vec <-> '1,2' LIMIT 1");
  ASSERT_TRUE(check.ok()) << check.status().ToString();
  ASSERT_FALSE(check->rows.empty());
  EXPECT_EQ(check->rows[0].id, 1);
  (void)valid;
}

TEST(SqlFuzzTest, LexerHandlesArbitraryBytes) {
  Rng rng(7);
  for (int trial = 0; trial < 500; ++trial) {
    std::string input;
    const size_t len = rng.Uniform(64);
    for (size_t i = 0; i < len; ++i) {
      input.push_back(static_cast<char>(rng.Uniform(128)));
    }
    (void)Tokenize(input);  // Status or tokens, never a crash
  }
  SUCCEED();
}

}  // namespace
}  // namespace vecdb::sql
