#include "distance/sgemm.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "distance/kernels.h"

namespace vecdb {
namespace {

void NaiveGemmTransB(size_t m, size_t n, size_t k, const float* a,
                     const float* b, float* c) {
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) {
      double s = 0;
      for (size_t p = 0; p < k; ++p) s += a[i * k + p] * b[j * k + p];
      c[i * n + j] = static_cast<float>(s);
    }
  }
}

class SgemmShapeTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, size_t>> {};

TEST_P(SgemmShapeTest, MatchesNaive) {
  const auto [m, n, k] = GetParam();
  Rng rng(m * 1000 + n * 10 + k);
  std::vector<float> a(m * k), b(n * k), c(m * n), ref(m * n);
  for (auto& v : a) v = rng.Gaussian();
  for (auto& v : b) v = rng.Gaussian();
  SgemmTransB(m, n, k, a.data(), b.data(), c.data());
  NaiveGemmTransB(m, n, k, a.data(), b.data(), ref.data());
  for (size_t i = 0; i < m * n; ++i) {
    EXPECT_NEAR(c[i], ref[i], 1e-3f * (std::abs(ref[i]) + 1.f))
        << "m=" << m << " n=" << n << " k=" << k << " at " << i;
  }
}

// Shapes straddle the micro-kernel (4x4) and blocking (64/64/256) edges.
INSTANTIATE_TEST_SUITE_P(
    Shapes, SgemmShapeTest,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(4, 4, 4),
                      std::make_tuple(3, 5, 7), std::make_tuple(8, 8, 128),
                      std::make_tuple(65, 63, 100),
                      std::make_tuple(64, 64, 256),
                      std::make_tuple(70, 130, 300),
                      std::make_tuple(1, 256, 128),
                      std::make_tuple(128, 1, 96)));

TEST(RowNormsTest, MatchesKernel) {
  Rng rng(5);
  const size_t n = 20, d = 33;
  std::vector<float> x(n * d), norms(n);
  for (auto& v : x) v = rng.Gaussian();
  RowNormsSqr(x.data(), n, d, norms.data());
  for (size_t i = 0; i < n; ++i) {
    EXPECT_FLOAT_EQ(norms[i], L2NormSqr(x.data() + i * d, d));
  }
}

TEST(AllPairsTest, SgemmDecompositionMatchesPerPairKernel) {
  Rng rng(6);
  const size_t nx = 37, ny = 53, d = 64;
  std::vector<float> x(nx * d), y(ny * d), fast(nx * ny), ref(nx * ny);
  for (auto& v : x) v = rng.Gaussian();
  for (auto& v : y) v = rng.Gaussian();
  AllPairsL2Sqr(x.data(), nx, y.data(), ny, d, nullptr, nullptr, fast.data());
  AllPairsL2SqrNaive(x.data(), nx, y.data(), ny, d, ref.data());
  for (size_t i = 0; i < nx * ny; ++i) {
    EXPECT_NEAR(fast[i], ref[i], 1e-2f * (ref[i] + 1.f));
  }
}

TEST(AllPairsTest, AcceptsPrecomputedNorms) {
  Rng rng(7);
  const size_t nx = 5, ny = 9, d = 16;
  std::vector<float> x(nx * d), y(ny * d), xn(nx), yn(ny), out1(nx * ny),
      out2(nx * ny);
  for (auto& v : x) v = rng.Gaussian();
  for (auto& v : y) v = rng.Gaussian();
  RowNormsSqr(x.data(), nx, d, xn.data());
  RowNormsSqr(y.data(), ny, d, yn.data());
  AllPairsL2Sqr(x.data(), nx, y.data(), ny, d, xn.data(), yn.data(),
                out1.data());
  AllPairsL2Sqr(x.data(), nx, y.data(), ny, d, nullptr, nullptr, out2.data());
  for (size_t i = 0; i < nx * ny; ++i) EXPECT_FLOAT_EQ(out1[i], out2[i]);
}

TEST(AllPairsTest, NeverNegative) {
  // The decomposition can dip below zero in float arithmetic; the API
  // guarantees clamping.
  Rng rng(8);
  const size_t n = 40, d = 128;
  std::vector<float> x(n * d), out(n * n);
  for (auto& v : x) v = rng.Gaussian();
  AllPairsL2Sqr(x.data(), n, x.data(), n, d, nullptr, nullptr, out.data());
  for (float v : out) EXPECT_GE(v, 0.f);
  // Diagonal (self distance) must be ~0.
  for (size_t i = 0; i < n; ++i) EXPECT_LT(out[i * n + i], 1e-3f);
}

}  // namespace
}  // namespace vecdb
