#include "sql/database.h"

#include <gtest/gtest.h>

#include <filesystem>

#include <string>

#include "sql/session.h"

namespace vecdb::sql {
namespace {

class DatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const std::string dir =
        ::testing::TempDir() + "/db_" +
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir);
    db_ = MiniDatabase::Open(dir).ValueOrDie();
    session_ = db_->CreateSession();
  }

  QueryResult Must(const std::string& sql) {
    auto result = session_->Execute(sql);
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status().ToString();
    return result.ok() ? *result : QueryResult{};
  }

  void LoadSmallTable() {
    Must("CREATE TABLE items (id int, vec float[4])");
    Must("INSERT INTO items VALUES "
         "(10, '1,0,0,0'), (20, '0,1,0,0'), (30, '0,0,1,0'), "
         "(40, '0,0,0,1'), (50, '0.9,0.1,0,0')");
  }

  std::unique_ptr<MiniDatabase> db_;
  std::shared_ptr<Session> session_;
};

TEST_F(DatabaseTest, CreateInsertSelectViaSeqScan) {
  LoadSmallTable();
  auto result = Must("SELECT id FROM items ORDER BY vec <-> '1,0,0,0' "
                     "LIMIT 2");
  ASSERT_EQ(result.rows.size(), 2u);
  EXPECT_EQ(result.rows[0].id, 10);  // exact match first
  EXPECT_EQ(result.rows[1].id, 50);  // then the nearby vector
}

TEST_F(DatabaseTest, SelectStarIncludesDistance) {
  LoadSmallTable();
  auto result =
      Must("SELECT * FROM items ORDER BY vec <-> '1,0,0,0' LIMIT 1");
  ASSERT_EQ(result.columns.size(), 2u);
  EXPECT_EQ(result.columns[1], "distance");
  EXPECT_NEAR(result.rows[0].distance, 0.0, 1e-6);
}

TEST_F(DatabaseTest, IndexScanMatchesSeqScan) {
  Must("CREATE TABLE t (id int, vec float[8])");
  // 300 rows in a ring of ids 1000+i.
  std::string insert = "INSERT INTO t VALUES ";
  for (int i = 0; i < 300; ++i) {
    if (i > 0) insert += ", ";
    insert += "(" + std::to_string(1000 + i) + ", '";
    for (int d = 0; d < 8; ++d) {
      if (d > 0) insert += ",";
      insert += std::to_string((i * 37 % 100) / 100.0 + d * 0.01);
    }
    insert += "')";
  }
  Must(insert);
  auto seq = Must("SELECT id FROM t ORDER BY vec <-> "
                  "'0.37,0.38,0.39,0.4,0.41,0.42,0.43,0.44' LIMIT 5");
  Must("CREATE INDEX t_idx ON t USING ivfflat (vec) WITH (clusters=8, "
       "sample_ratio=1)");
  auto indexed = Must("SELECT id FROM t ORDER BY vec <-> "
                      "'0.37,0.38,0.39,0.4,0.41,0.42,0.43,0.44' "
                      "OPTIONS (nprobe=8) LIMIT 5");
  ASSERT_EQ(indexed.rows.size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(indexed.rows[i].id, seq.rows[i].id);
  }
}

TEST_F(DatabaseTest, AllThreeEnginesAnswerQueries) {
  for (const std::string engine : {"pase", "faiss", "bridge"}) {
    const std::string table = "t_" + engine;
    Must("CREATE TABLE " + table + " (id int, vec float[4])");
    std::string insert = "INSERT INTO " + table + " VALUES ";
    for (int i = 0; i < 64; ++i) {
      if (i > 0) insert += ", ";
      insert += "(" + std::to_string(i) + ", '" + std::to_string(i * 0.1) +
                ",0,0,0')";
    }
    Must(insert);
    Must("CREATE INDEX idx_" + engine + " ON " + table +
         " USING ivfflat (vec) WITH (clusters=4, sample_ratio=1, engine='" +
         engine + "')");
    auto result = Must("SELECT id FROM " + table +
                       " ORDER BY vec <-> '0.05,0,0,0' OPTIONS (nprobe=4) "
                       "LIMIT 3");
    ASSERT_EQ(result.rows.size(), 3u) << engine;
    EXPECT_TRUE(result.rows[0].id == 0 || result.rows[0].id == 1) << engine;
  }
}

TEST_F(DatabaseTest, ExplainShowsPlan) {
  LoadSmallTable();
  auto seq = Must("EXPLAIN SELECT id FROM items ORDER BY vec <-> '1,0,0,0' "
                  "LIMIT 2");
  EXPECT_NE(seq.message.find("Seq Scan"), std::string::npos);
  Must("CREATE INDEX items_idx ON items USING ivfflat (vec) "
       "WITH (clusters=2, sample_ratio=1)");
  auto idx = Must("EXPLAIN SELECT id FROM items ORDER BY vec <-> '1,0,0,0' "
                  "LIMIT 2");
  EXPECT_NE(idx.message.find("Index Scan"), std::string::npos);
}

TEST_F(DatabaseTest, NonL2MetricFallsBackToSeqScan) {
  LoadSmallTable();
  Must("CREATE INDEX items_idx ON items USING ivfflat (vec) "
       "WITH (clusters=2, sample_ratio=1)");
  auto plan = Must("EXPLAIN SELECT id FROM items ORDER BY vec <=> '1,0,0,0' "
                   "LIMIT 2");
  EXPECT_NE(plan.message.find("Seq Scan"), std::string::npos);
  auto result =
      Must("SELECT id FROM items ORDER BY vec <=> '1,0,0,0' LIMIT 1");
  EXPECT_EQ(result.rows[0].id, 10);
}

TEST_F(DatabaseTest, ErrorsSurfaceCleanly) {
  EXPECT_TRUE(session_->Execute("SELECT id FROM ghost ORDER BY v <-> '1' LIMIT 1")
                  .status()
                  .IsNotFound());
  Must("CREATE TABLE t (id int, vec float[2])");
  EXPECT_TRUE(session_->Execute("CREATE TABLE t (id int, vec float[2])")
                  .status()
                  .IsAlreadyExists());
  // Dimension mismatches.
  EXPECT_FALSE(session_->Execute("INSERT INTO t VALUES (1, '1,2,3')").ok());
  EXPECT_FALSE(
      session_->Execute("SELECT id FROM t ORDER BY vec <-> '1,2,3' LIMIT 1").ok());
  // Unknown engine / method.
  Must("INSERT INTO t VALUES (1, '1,2')");
  EXPECT_FALSE(session_->Execute("CREATE INDEX i ON t USING ivfflat (vec) "
                            "WITH (engine='oracle')")
                   .ok());
  EXPECT_FALSE(
      session_->Execute("CREATE INDEX i ON t USING btree (vec)").ok());
  // Selecting a non-id column.
  EXPECT_FALSE(
      session_->Execute("SELECT vec FROM t ORDER BY vec <-> '1,2' LIMIT 1").ok());
}

TEST_F(DatabaseTest, DropTableAndIndexLifecycle) {
  LoadSmallTable();
  Must("CREATE INDEX items_idx ON items USING ivfflat (vec) "
       "WITH (clusters=2, sample_ratio=1)");
  // Table with an index cannot be dropped first.
  EXPECT_FALSE(session_->Execute("DROP TABLE items").ok());
  Must("DROP INDEX items_idx");
  Must("DROP TABLE items");
  EXPECT_TRUE(session_->Execute("SELECT id FROM items ORDER BY vec <-> '1,0,0,0' "
                           "LIMIT 1")
                  .status()
                  .IsNotFound());
}

TEST_F(DatabaseTest, DeleteRemovesRowFromBothScanPaths) {
  LoadSmallTable();
  Must("CREATE INDEX items_idx ON items USING ivfflat (vec) "
       "WITH (clusters=2, sample_ratio=1)");
  // id=10 is the exact match for this query in both plans.
  auto before = Must("SELECT id FROM items ORDER BY vec <-> '1,0,0,0' "
                     "OPTIONS (nprobe=2) LIMIT 1");
  EXPECT_EQ(before.rows[0].id, 10);
  Must("DELETE FROM items WHERE id = 10");
  // Index scan no longer returns it.
  auto indexed = Must("SELECT id FROM items ORDER BY vec <-> '1,0,0,0' "
                      "OPTIONS (nprobe=2) LIMIT 1");
  EXPECT_EQ(indexed.rows[0].id, 50);
  // Seq scan (cosine forces the fallback) agrees.
  auto seq = Must("SELECT id FROM items ORDER BY vec <=> '1,0,0,0' LIMIT 1");
  EXPECT_NE(seq.rows[0].id, 10);
  // Double delete and unknown rows fail.
  EXPECT_TRUE(session_->Execute("DELETE FROM items WHERE id = 10")
                  .status()
                  .IsNotFound());
  EXPECT_FALSE(session_->Execute("DELETE FROM items WHERE id = 777").ok());
}

TEST_F(DatabaseTest, DeleteValidatesColumnAndTable) {
  LoadSmallTable();
  EXPECT_FALSE(session_->Execute("DELETE FROM items WHERE vec = 1").ok());
  EXPECT_TRUE(
      session_->Execute("DELETE FROM ghost WHERE id = 1").status().IsNotFound());
}

TEST_F(DatabaseTest, UserRowIdsPreservedThroughIndexScan) {
  Must("CREATE TABLE t (id int, vec float[2])");
  Must("INSERT INTO t VALUES (777, '0,0'), (888, '1,1'), (999, '2,2')");
  Must("CREATE INDEX i ON t USING ivfflat (vec) WITH (clusters=2, "
       "sample_ratio=1)");
  auto result =
      Must("SELECT id FROM t ORDER BY vec <-> '0.1,0.1' OPTIONS (nprobe=2) "
           "LIMIT 1");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0].id, 777);
}

// Extracts a counter's value from the SHOW METRICS table ("name   value").
uint64_t TableValue(const std::string& table, const std::string& name) {
  const size_t pos = table.find(name + " ");
  if (pos == std::string::npos) return ~uint64_t{0};
  const size_t eol = table.find('\n', pos);
  return std::stoull(table.substr(pos + name.size(), eol - pos - name.size()));
}

TEST_F(DatabaseTest, ShowMetricsRoundTripsAndCounts) {
  Must("SHOW METRICS RESET");  // start from a clean registry
  LoadSmallTable();
  Must("SELECT id FROM items ORDER BY vec <-> '1,0,0,0' LIMIT 2");
  EXPECT_FALSE(session_->Execute("SELECT nope FROM items ORDER BY vec <-> '1' "
                            "LIMIT 1")
                   .ok());
  auto shown = Must("SHOW METRICS");
  // The export is the full counter/histogram table with live values.
  EXPECT_EQ(TableValue(shown.message, "sql.select"), 2u);
  EXPECT_EQ(TableValue(shown.message, "sql.insert_rows"), 5u);
  EXPECT_EQ(TableValue(shown.message, "sql.create_table"), 1u);
  EXPECT_EQ(TableValue(shown.message, "sql.errors"), 1u);
  EXPECT_NE(shown.message.find("sql.select_nanos"), std::string::npos);
  // The heap scan goes through the buffer manager, so page counters moved.
  EXPECT_GT(TableValue(shown.message, "bufmgr.pin"), 0u);

  // RESET zeroes everything; the subsequent export reflects it.
  Must("SHOW METRICS RESET");
  auto cleared = Must("SHOW METRICS");
  EXPECT_EQ(TableValue(cleared.message, "sql.select"), 0u);
  EXPECT_EQ(TableValue(cleared.message, "sql.errors"), 0u);
}

TEST_F(DatabaseTest, ExecStatsReportRowsAndLatency) {
  LoadSmallTable();
  auto seq = Must("SELECT id FROM items ORDER BY vec <-> '1,0,0,0' LIMIT 2");
  EXPECT_EQ(seq.stats.rows_returned, 2u);
  EXPECT_EQ(seq.stats.rows_scanned, 5u);  // full heap scan
  EXPECT_GT(seq.stats.wall_seconds, 0.0);

  Must("CREATE INDEX items_idx ON items USING ivfflat (vec) WITH "
       "(clusters=2, sample_ratio=1)");
  auto indexed = Must("SELECT id FROM items ORDER BY vec <-> '1,0,0,0' "
                      "OPTIONS (nprobe=1) LIMIT 2");
  EXPECT_EQ(indexed.stats.rows_returned, 2u);
  // nprobe=1 visits one bucket: at least the results, fewer than the table.
  EXPECT_GE(indexed.stats.rows_scanned, 2u);
  EXPECT_LE(indexed.stats.rows_scanned, 5u);

  auto ddl = Must("DROP INDEX items_idx");
  EXPECT_EQ(ddl.stats.rows_returned, 0u);
  EXPECT_GT(ddl.stats.wall_seconds, 0.0);
}

TEST_F(DatabaseTest, LargeLimitGetsWorkingEfsDefault) {
  // LIMIT above the old fixed efs=200 must not trip the efs >= k guard.
  Must("CREATE TABLE big (id int, vec float[4])");
  std::string insert = "INSERT INTO big VALUES ";
  for (int i = 0; i < 300; ++i) {
    if (i > 0) insert += ", ";
    insert += "(" + std::to_string(i) + ", '" + std::to_string(i * 0.01) +
              "," + std::to_string((i * 37 % 100) * 0.01) + ",0,0')";
  }
  Must(insert);
  Must("CREATE INDEX big_idx ON big USING hnsw (vec) WITH (bnn=8, efb=16)");
  auto result =
      Must("SELECT id FROM big ORDER BY vec <-> '1,0,0,0' LIMIT 250");
  EXPECT_GT(result.rows.size(), 200u);
}

}  // namespace
}  // namespace vecdb::sql
