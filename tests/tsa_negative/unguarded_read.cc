// TSA gate liveness probe: MUST FAIL to compile under
// -Wthread-safety -Werror=thread-safety (clang). A `guarded_by` field is
// read without its mutex held; if this file ever compiles in the TSA
// configuration, the static lock-discipline gate is dead (wrong flags,
// broken macro expansion, or a toolchain regression) and the build aborts
// — see tests/CMakeLists.txt and docs/ANALYSIS.md §5.
#include "common/thread_annotations.h"

namespace {

class Counter {
 public:
  void Bump() VECDB_EXCLUDES(mu_) {
    vecdb::MutexLock lock(mu_);
    ++value_;
  }

  // BUG (deliberate): reads value_ without holding mu_.
  int Get() const { return value_; }

 private:
  mutable vecdb::Mutex mu_;
  int value_ VECDB_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Bump();
  return c.Get();
}
