// TSA gate control case: MUST COMPILE cleanly under
// -Wthread-safety -Werror=thread-safety (clang). Exercises the full
// annotation vocabulary the engine uses — guarded fields behind
// MutexLock scopes, REQUIRES helpers called under the lock, EXCLUDES
// entry points, reader/writer SharedMutex sections, and the
// condition-variable Wait bridge. If this file FAILS, the wrappers or
// macros are broken (a false positive), which would poison every
// annotated file; the configure step aborts with the compiler output.
#include <condition_variable>

#include "common/thread_annotations.h"

namespace {

class Queue {
 public:
  void Put(int v) VECDB_EXCLUDES(mu_) {
    {
      vecdb::MutexLock lock(mu_);
      value_ = v;
      ready_ = true;
      BumpLocked();
    }
    cv_.notify_one();
  }

  int Take() VECDB_EXCLUDES(mu_) {
    vecdb::MutexLock lock(mu_);
    while (!ready_) lock.Wait(cv_);
    ready_ = false;
    return value_;
  }

  bool TryPeek(int* out) VECDB_EXCLUDES(mu_) {
    if (!mu_.TryLock()) return false;
    *out = value_;
    mu_.Unlock();
    return true;
  }

 private:
  void BumpLocked() VECDB_REQUIRES(mu_) { ++puts_; }

  vecdb::Mutex mu_;
  std::condition_variable cv_;
  int value_ VECDB_GUARDED_BY(mu_) = 0;
  int puts_ VECDB_GUARDED_BY(mu_) = 0;
  bool ready_ VECDB_GUARDED_BY(mu_) = false;
};

class Snapshot {
 public:
  void Set(int v) VECDB_EXCLUDES(smu_) {
    vecdb::WriterMutexLock lock(smu_);
    value_ = v;
  }

  int Get() const VECDB_EXCLUDES(smu_) {
    vecdb::ReaderMutexLock lock(smu_);
    return value_;
  }

 private:
  mutable vecdb::SharedMutex smu_;
  int value_ VECDB_GUARDED_BY(smu_) = 0;
};

}  // namespace

int main() {
  Queue q;
  q.Put(7);
  int peeked = 0;
  (void)q.TryPeek(&peeked);
  Snapshot s;
  s.Set(q.Take());
  return s.Get();
}
