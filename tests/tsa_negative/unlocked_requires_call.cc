// TSA gate liveness probe: MUST FAIL to compile under
// -Wthread-safety -Werror=thread-safety (clang). A `requires_capability`
// method is called without the mutex held; if this compiles in the TSA
// configuration the gate is dead and the build aborts — see
// tests/CMakeLists.txt and docs/ANALYSIS.md §5.
#include "common/thread_annotations.h"

namespace {

class Counter {
 public:
  void BumpLocked() VECDB_REQUIRES(mu_) { ++value_; }

  // BUG (deliberate): calls a REQUIRES(mu_) method without locking mu_.
  void Bump() { BumpLocked(); }

 private:
  vecdb::Mutex mu_;
  int value_ VECDB_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Bump();
  return 0;
}
