// End-to-end tests for the networked front end: VecServer + VecClient on
// a loopback socket. Covers the ISSUE acceptance criteria — concurrent
// clients with exact parity against the in-process Session path,
// statement cancellation via CANCEL <id> SQL and the out-of-band cancel
// frame, statement_timeout_ms enforcement with the connection surviving,
// capacity refusal, and protocol-error resilience. The ServerStressTest
// suite is additionally run under TSan by ci/run_checks.sh.
#include "net/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/timer.h"
#include "net/client.h"
#include "sql/database.h"
#include "sql/session.h"

namespace vecdb::net {
namespace {

using sql::DatabaseOptions;
using sql::MiniDatabase;
using sql::QueryResult;

std::string TestDir(const char* suffix) {
  std::string dir = ::testing::TempDir() + "/net_" +
                    ::testing::UnitTest::GetInstance()
                        ->current_test_info()
                        ->name() +
                    "_" + suffix;
  std::filesystem::remove_all(dir);
  return dir;
}

DatabaseOptions SmallPool() {
  DatabaseOptions options;
  options.pool_pages = 256;
  return options;
}

std::string Vec4(int seed) {
  return std::to_string(seed % 7) + "," + std::to_string((seed / 7) % 7) +
         "," + std::to_string((seed / 49) % 7) + "," + std::to_string(seed);
}

/// Multi-row INSERT for ids [first, first + count) into
/// t (id, vec, price) with price = id % 7.
std::string InsertBatch(int64_t first, int count) {
  std::string sql = "INSERT INTO t VALUES ";
  for (int i = 0; i < count; ++i) {
    if (i > 0) sql += ", ";
    const int64_t id = first + i;
    sql += "(" + std::to_string(id) + ", '" +
           Vec4(static_cast<int>(id)) + "', " + std::to_string(id % 7) + ")";
  }
  return sql;
}

QueryResult Must(VecClient& client, const std::string& stmt) {
  auto result = client.Execute(stmt);
  EXPECT_TRUE(result.ok()) << stmt << " -> " << result.status().ToString();
  return result.ok() ? *result : QueryResult{};
}

QueryResult Must(sql::Session& session, const std::string& stmt) {
  auto result = session.Execute(stmt);
  EXPECT_TRUE(result.ok()) << stmt << " -> " << result.status().ToString();
  return result.ok() ? *result : QueryResult{};
}

/// Opens a database + server pair; the fixture-free tests call this.
struct Harness {
  std::unique_ptr<MiniDatabase> db;
  std::unique_ptr<VecServer> server;
};

Harness StartHarness(const std::string& dir, DatabaseOptions db_options,
                     ServerOptions server_options = {}) {
  Harness h;
  auto db = MiniDatabase::Open(dir, db_options);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  h.db = std::move(*db);
  auto server = VecServer::Start(h.db.get(), server_options);
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  h.server = std::move(*server);
  return h;
}

std::unique_ptr<VecClient> MustConnect(uint16_t port) {
  auto client = VecClient::Connect("127.0.0.1", port);
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  return client.ok() ? std::move(*client) : nullptr;
}

TEST(ServerTest, OptionsAreValidated) {
  auto db = MiniDatabase::Open(TestDir("opts"), SmallPool());
  ASSERT_TRUE(db.ok());
  ServerOptions bad_port;
  bad_port.listen_port = 65536;
  EXPECT_TRUE(VecServer::Start(db->get(), bad_port)
                  .status()
                  .IsInvalidArgument());
  ServerOptions no_conns;
  no_conns.max_connections = 0;
  EXPECT_TRUE(VecServer::Start(db->get(), no_conns)
                  .status()
                  .IsInvalidArgument());
  ServerOptions no_workers;
  no_workers.worker_threads = 0;
  EXPECT_TRUE(VecServer::Start(db->get(), no_workers)
                  .status()
                  .IsInvalidArgument());
}

TEST(ServerTest, StartStopIsCleanAndIdempotent) {
  auto h = StartHarness(TestDir("db"), SmallPool());
  ASSERT_NE(h.server, nullptr);
  EXPECT_NE(h.server->port(), 0);
  EXPECT_EQ(h.server->connections(), 0u);
  h.server->Stop();
  h.server->Stop();  // second Stop is a no-op
}

TEST(ServerTest, ExecuteRoundTripAndErrorsKeepConnectionUsable) {
  auto h = StartHarness(TestDir("db"), SmallPool());
  auto client = MustConnect(h.server->port());
  ASSERT_NE(client, nullptr);
  EXPECT_GT(client->session_id(), 0u);

  Must(*client, "CREATE TABLE t (id int, vec float[4], price int)");
  Must(*client, InsertBatch(1, 20));
  auto result =
      Must(*client, "SELECT id FROM t ORDER BY vec <#> '1,1,1,1' LIMIT 3");
  ASSERT_EQ(result.rows.size(), 3u);
  EXPECT_EQ(result.columns, std::vector<std::string>{"id"});
  EXPECT_GT(result.stats.rows_scanned, 0u);

  // A failing statement comes back as its Status, not a dropped
  // connection: the code survives the wire and the next statement runs.
  auto missing = client->Execute(
      "SELECT id FROM ghost ORDER BY vec <#> '1,1,1,1' LIMIT 1");
  EXPECT_TRUE(missing.status().IsNotFound()) << missing.status().ToString();
  auto parse_error = client->Execute("SELEKT banana");
  EXPECT_FALSE(parse_error.ok());
  EXPECT_EQ(Must(*client, "SELECT id FROM t ORDER BY vec <#> '1,1,1,1' "
                          "LIMIT 3")
                .rows.size(),
            3u);
}

TEST(ServerTest, ShowSessionsReportsPeerAddress) {
  auto h = StartHarness(TestDir("db"), SmallPool());
  auto client = MustConnect(h.server->port());
  ASSERT_NE(client, nullptr);
  auto local = h.db->CreateSession();
  const std::string table = Must(*local, "SHOW SESSIONS").message;
  EXPECT_NE(table.find("127.0.0.1:"), std::string::npos) << table;
  EXPECT_NE(table.find("local"), std::string::npos) << table;
}

// The headline acceptance test: 8 concurrent clients over the wire, mixed
// INSERT / SELECT / filtered-search load, and read results byte-identical
// to the in-process Session path.
TEST(ServerTest, EightConcurrentClientsMatchInProcessSession) {
  constexpr int kClients = 8;
  constexpr int kRowsPerClient = 40;
  auto h = StartHarness(TestDir("db"), SmallPool());
  auto setup = h.db->CreateSession();
  Must(*setup, "CREATE TABLE t (id int, vec float[4], price int)");

  // Phase 1: every client inserts a disjoint id range, interleaved with
  // reads, all concurrently over the wire.
  {
    std::vector<std::thread> threads;
    std::atomic<int> failures{0};
    for (int c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        auto client = VecClient::Connect("127.0.0.1", h.server->port());
        if (!client.ok()) {
          ++failures;
          return;
        }
        const int64_t base = 1000 + c * kRowsPerClient;
        for (int chunk = 0; chunk < kRowsPerClient; chunk += 10) {
          if (!(*client)->Execute(InsertBatch(base + chunk, 10)).ok()) {
            ++failures;
          }
          // Interleave a read; row counts vary while inserts race, so
          // only success is asserted here.
          if (!(*client)
                   ->Execute("SELECT id FROM t ORDER BY vec <#> "
                             "'1,1,1,1' LIMIT 5")
                   .ok()) {
            ++failures;
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(failures.load(), 0);
  }

  ASSERT_EQ(Must(*setup, "SELECT id FROM t ORDER BY vec <#> '1,1,1,1' "
                         "LIMIT 100000")
                .rows.size(),
            static_cast<size_t>(kClients * kRowsPerClient));
  Must(*setup, "CREATE INDEX t_idx ON t USING ivfflat (vec) WITH "
               "(clusters=8, sample_ratio=1)");

  // Phase 2: deterministic read-only queries. Expected answers come from
  // the in-process Session path; every client must match them exactly —
  // ids, distances, columns, and row counts.
  const std::vector<std::string> queries = {
      "SELECT id FROM t ORDER BY vec <#> '1,2,3,4' LIMIT 10",
      "SELECT id FROM t ORDER BY vec <-> '1,2,3,4' "
      "OPTIONS (nprobe=8) LIMIT 10",
      "SELECT id FROM t WHERE price < 3 ORDER BY vec <-> '1,2,3,4' "
      "OPTIONS (nprobe=8) LIMIT 10",
  };
  std::vector<QueryResult> expected;
  for (const auto& q : queries) expected.push_back(Must(*setup, q));

  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&] {
      auto client = VecClient::Connect("127.0.0.1", h.server->port());
      if (!client.ok()) {
        ++mismatches;
        return;
      }
      for (size_t q = 0; q < queries.size(); ++q) {
        auto got = (*client)->Execute(queries[q]);
        if (!got.ok() || got->columns != expected[q].columns ||
            got->rows.size() != expected[q].rows.size()) {
          ++mismatches;
          continue;
        }
        for (size_t i = 0; i < got->rows.size(); ++i) {
          // Doubles cross the wire as raw bits: exact equality holds.
          if (got->rows[i].id != expected[q].rows[i].id ||
              got->rows[i].distance != expected[q].rows[i].distance) {
            ++mismatches;
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

/// Fixture for the cancellation tests: a table big enough — via the
/// per-row seq-scan delay seam — that a full scan takes ~800ms, so a
/// cancel or a 100ms timeout provably lands mid-statement.
class ServerCancelTest : public ::testing::Test {
 protected:
  static constexpr int kRows = 4000;
  static constexpr uint64_t kDelayNanos = 200 * 1000;  // 0.2ms per row
  static constexpr const char* kLongSelect =
      "SELECT id FROM t ORDER BY vec <#> '1,1,1,1' LIMIT 5";

  void SetUp() override {
    DatabaseOptions options = SmallPool();
    options.seqscan_delay_nanos_for_test = kDelayNanos;
    harness_ = StartHarness(TestDir("db"), options);
    auto setup = harness_.db->CreateSession();
    Must(*setup, "CREATE TABLE t (id int, vec float[4], price int)");
    for (int64_t first = 0; first < kRows; first += 100) {
      Must(*setup, InsertBatch(first, 100));
    }
  }

  Harness harness_;
};

TEST_F(ServerCancelTest, CancelStatementAbortsLongScanOverTheWire) {
  auto client = MustConnect(harness_.server->port());
  ASSERT_NE(client, nullptr);
  std::atomic<bool> done{false};
  Status long_status;
  std::thread victim([&] {
    long_status = client->Execute(kLongSelect).status();
    done.store(true);
  });
  // Fire CANCEL <id> from an in-process session until the statement
  // aborts; cancels that land before the statement starts are dropped
  // (PostgreSQL semantics), hence the retry loop.
  auto admin = harness_.db->CreateSession();
  const std::string cancel_sql =
      "CANCEL " + std::to_string(client->session_id());
  while (!done.load()) {
    ASSERT_TRUE(admin->Execute(cancel_sql).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  victim.join();
  ASSERT_TRUE(long_status.IsCancelled()) << long_status.ToString();
  EXPECT_NE(long_status.message().find("statement cancelled"),
            std::string::npos)
      << long_status.ToString();
  // The connection survived: the next statement runs normally.
  EXPECT_EQ(Must(*client, "SELECT id FROM t ORDER BY vec <#> '1,1,1,1' "
                          "LIMIT 1")
                .rows.size(),
            1u);
}

TEST_F(ServerCancelTest, OutOfBandCancelFrameAbortsLongScan) {
  auto client = MustConnect(harness_.server->port());
  ASSERT_NE(client, nullptr);
  std::atomic<bool> done{false};
  Status long_status;
  std::thread victim([&] {
    long_status = client->Execute(kLongSelect).status();
    done.store(true);
  });
  // The cancel frame travels on the same socket while Execute blocks in
  // another thread — this is exactly the out-of-band path the scheduler's
  // always-POLLIN registration exists for.
  while (!done.load()) {
    ASSERT_TRUE(client->Cancel().ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  victim.join();
  ASSERT_TRUE(long_status.IsCancelled()) << long_status.ToString();
  EXPECT_EQ(Must(*client, "SELECT id FROM t ORDER BY vec <#> '1,1,1,1' "
                          "LIMIT 1")
                .rows.size(),
            1u);
}

TEST_F(ServerCancelTest, StatementTimeoutFiresEarlyAndConnectionSurvives) {
  auto client = MustConnect(harness_.server->port());
  ASSERT_NE(client, nullptr);
  Timer timer;
  auto result = client->Execute(
      "SELECT id FROM t ORDER BY vec <#> '1,1,1,1' "
      "OPTIONS (statement_timeout_ms = 100) LIMIT 5");
  const double elapsed_ms = timer.ElapsedMillis();
  ASSERT_TRUE(result.status().IsCancelled()) << result.status().ToString();
  EXPECT_NE(result.status().message().find("statement timeout"),
            std::string::npos)
      << result.status().ToString();
  // The full scan takes >= kRows * kDelayNanos = 800ms of wall time; the
  // timeout must abort far earlier (100ms deadline + one checkpoint
  // interval + scheduling slack).
  EXPECT_LT(elapsed_ms, 600.0);
  // SET makes the timeout a session default; clearing it via a larger
  // OPTIONS value proves the precedence chain end to end.
  ASSERT_TRUE(Must(*client, "SET statement_timeout_ms = 100").message ==
              "SET");
  auto via_set = client->Execute(kLongSelect);
  ASSERT_TRUE(via_set.status().IsCancelled());
  auto override_set = client->Execute(
      "SELECT id FROM t ORDER BY vec <#> '1,1,1,1' "
      "OPTIONS (statement_timeout_ms = 60000) LIMIT 1");
  EXPECT_TRUE(override_set.ok()) << override_set.status().ToString();
}

TEST(ServerTest, ConnectionsBeyondCapacityAreRefused) {
  ServerOptions server_options;
  server_options.max_connections = 2;
  auto h = StartHarness(TestDir("db"), SmallPool(), server_options);
  auto a = MustConnect(h.server->port());
  auto b = MustConnect(h.server->port());
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  auto c = VecClient::Connect("127.0.0.1", h.server->port());
  ASSERT_FALSE(c.ok());
  EXPECT_TRUE(c.status().IsResourceExhausted()) << c.status().ToString();
  EXPECT_NE(c.status().message().find("too many connections"),
            std::string::npos);
  // Freeing a slot re-admits: close one and retry until the scheduler
  // reaps the old connection.
  a->Close();
  for (int attempt = 0; attempt < 200; ++attempt) {
    auto retry = VecClient::Connect("127.0.0.1", h.server->port());
    if (retry.ok()) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  FAIL() << "slot was never freed after closing a connection";
}

TEST(ServerTest, GarbageBytesGetOneErrorFrameThenCloseOthersUnaffected) {
  auto h = StartHarness(TestDir("db"), SmallPool());
  auto healthy = MustConnect(h.server->port());
  ASSERT_NE(healthy, nullptr);
  Must(*healthy, "CREATE TABLE t (id int, vec float[4], price int)");

  auto raw = Socket::ConnectTcp("127.0.0.1", h.server->port());
  ASSERT_TRUE(raw.ok());
  std::vector<uint8_t> garbage(64, 0xAB);
  ASSERT_TRUE(raw->SendAll(garbage.data(), garbage.size()).ok());
  // The server answers with exactly one Error frame, then closes.
  FrameDecoder decoder;
  std::optional<Frame> reply;
  for (;;) {
    auto next = decoder.Next();
    ASSERT_TRUE(next.ok());
    if (next->has_value()) {
      reply = std::move(**next);
      break;
    }
    uint8_t buf[512];
    auto n = raw->RecvSome(buf, sizeof(buf));
    ASSERT_TRUE(n.ok());
    ASSERT_GT(*n, 0u) << "connection closed before the error frame";
    decoder.Feed(buf, *n);
  }
  ASSERT_EQ(reply->type, FrameType::kError);
  auto err = DecodeError(reply->payload);
  ASSERT_TRUE(err.ok());
  EXPECT_EQ(err->code, StatusCode::kCorruption);
  // ...then EOF.
  for (;;) {
    uint8_t buf[512];
    auto n = raw->RecvSome(buf, sizeof(buf));
    ASSERT_TRUE(n.ok());
    if (*n == 0) break;
  }
  // The healthy connection never noticed.
  Must(*healthy, InsertBatch(1, 5));
  EXPECT_EQ(Must(*healthy, "SELECT id FROM t ORDER BY vec <#> '1,1,1,1' "
                           "LIMIT 5")
                .rows.size(),
            5u);
}

TEST(ServerTest, PipelinedStatementsKeepOrder) {
  // Statements queue FIFO per connection: a burst submitted before the
  // first finishes must come back in submission order. Exercised through
  // the pending-queue path via many small sequential statements.
  auto h = StartHarness(TestDir("db"), SmallPool());
  auto client = MustConnect(h.server->port());
  ASSERT_NE(client, nullptr);
  Must(*client, "CREATE TABLE t (id int, vec float[4], price int)");
  for (int i = 0; i < 50; ++i) {
    Must(*client, InsertBatch(i * 2, 2));
    auto r = Must(*client, "SELECT id FROM t ORDER BY vec <#> '0,0,0,0' "
                           "LIMIT 1000");
    EXPECT_EQ(r.rows.size(), static_cast<size_t>((i + 1) * 2));
  }
}

// --- TSan stress: connection churn + concurrent statements + shutdown ---

TEST(ServerStressTest, ChurnMixedLoadAndCancel) {
  constexpr int kThreads = 8;
  constexpr int kRounds = 3;
  auto h = StartHarness(TestDir("db"), SmallPool());
  auto setup = h.db->CreateSession();
  Must(*setup, "CREATE TABLE t (id int, vec float[4], price int)");
  std::atomic<int64_t> next_id{0};
  std::atomic<int> failures{0};
  for (int round = 0; round < kRounds; ++round) {
    std::vector<std::thread> threads;
    for (int c = 0; c < kThreads; ++c) {
      threads.emplace_back([&, c] {
        auto client = VecClient::Connect("127.0.0.1", h.server->port());
        if (!client.ok()) {
          ++failures;
          return;
        }
        for (int i = 0; i < 6; ++i) {
          const int64_t base = next_id.fetch_add(4);
          if (!(*client)->Execute(InsertBatch(base, 4)).ok()) ++failures;
          auto r = (*client)->Execute(
              "SELECT id FROM t ORDER BY vec <#> '1,1,1,1' LIMIT 8");
          if (!r.ok()) ++failures;
          // A cancel with no statement in flight must be harmless.
          if (c % 2 == 0 && !(*client)->Cancel().ok()) ++failures;
        }
      });
    }
    for (auto& t : threads) t.join();
  }
  EXPECT_EQ(failures.load(), 0);
  // The scheduler reaps closed connections asynchronously; give it a
  // bounded window to notice every Goodbye/EOF.
  for (int i = 0; i < 500 && h.server->connections() != 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(h.server->connections(), 0u);
}

TEST(ServerStressTest, StopWithClientsMidFlight) {
  DatabaseOptions options = SmallPool();
  options.seqscan_delay_nanos_for_test = 100 * 1000;  // 0.1ms per row
  auto h = StartHarness(TestDir("db"), options);
  auto setup = h.db->CreateSession();
  Must(*setup, "CREATE TABLE t (id int, vec float[4], price int)");
  for (int64_t first = 0; first < 1000; first += 100) {
    Must(*setup, InsertBatch(first, 100));
  }
  // Clients hammer long scans; Stop() lands mid-statement. Every Execute
  // must return (cancelled, connection-closed, or completed) — never hang.
  std::vector<std::thread> threads;
  for (int c = 0; c < 4; ++c) {
    threads.emplace_back([&] {
      auto client = VecClient::Connect("127.0.0.1", h.server->port());
      if (!client.ok()) return;
      for (int i = 0; i < 100; ++i) {
        if (!(*client)
                 ->Execute("SELECT id FROM t ORDER BY vec <#> "
                           "'1,1,1,1' LIMIT 5")
                 .ok()) {
          break;  // server went away mid-run: expected
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  h.server->Stop();
  for (auto& t : threads) t.join();
}

}  // namespace
}  // namespace vecdb::net
