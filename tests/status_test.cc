#include "common/status.h"

#include <gtest/gtest.h>

namespace vecdb {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, EveryConstructorMapsToItsPredicate) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kCorruption), "Corruption");
  EXPECT_EQ(StatusCodeName(StatusCode::kResourceExhausted),
            "ResourceExhausted");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_EQ(std::move(r).ValueOrDie(), 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, WorksWithMoveOnlyTypes) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(**r, 5);
  auto owned = std::move(r).ValueOrDie();
  EXPECT_EQ(*owned, 5);
}

Status FailingHelper() { return Status::IOError("disk gone"); }

Status PropagationSite() {
  VECDB_RETURN_NOT_OK(FailingHelper());
  return Status::Internal("should not reach");
}

TEST(MacrosTest, ReturnNotOkPropagates) {
  Status s = PropagationSite();
  EXPECT_TRUE(s.IsIOError());
}

Result<int> ProducerOk() { return 41; }
Result<int> ProducerErr() { return Status::OutOfRange("nope"); }

Result<int> AssignSiteOk() {
  VECDB_ASSIGN_OR_RETURN(int v, ProducerOk());
  return v + 1;
}

Result<int> AssignSiteErr() {
  VECDB_ASSIGN_OR_RETURN(int v, ProducerErr());
  return v + 1;
}

TEST(MacrosTest, AssignOrReturnBindsAndPropagates) {
  auto ok = AssignSiteOk();
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  auto err = AssignSiteErr();
  EXPECT_TRUE(err.status().IsOutOfRange());
}

}  // namespace
}  // namespace vecdb
