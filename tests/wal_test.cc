#include "pgstub/wal.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <memory>

#include "pgstub/bufmgr.h"
#include "pgstub/crc32c.h"
#include "pgstub/heap_table.h"

namespace vecdb::pgstub {
namespace {

std::string TestDir(const char* suffix) {
  std::string dir = ::testing::TempDir() + "/wal_" +
                    ::testing::UnitTest::GetInstance()
                        ->current_test_info()
                        ->name() +
                    "_" + suffix;
  // Durable state now survives reruns; start every test from scratch.
  std::filesystem::remove_all(dir);
  return dir;
}

std::string TestLog(const char* suffix) {
  std::string path = TestDir(suffix) + ".wal";
  std::remove(path.c_str());
  std::remove((path + ".new").c_str());
  return path;
}

/// Deterministic byte stream (xorshift) for CRC parity tests.
uint8_t NextByte(uint64_t* state) {
  *state ^= *state << 13;
  *state ^= *state >> 7;
  *state ^= *state << 17;
  return static_cast<uint8_t>(*state);
}

TEST(Crc32cTest, KnownValuesAndSensitivity) {
  // CRC-32C of "123456789" is the classic check value 0xE3069283.
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(Crc32c("", 0), 0u);
  const char a[] = "hello";
  const char b[] = "hellp";
  EXPECT_NE(Crc32c(a, 5), Crc32c(b, 5));
}

TEST(Crc32cTest, TableAndDispatchedMatchBitwiseOracle) {
  // The fast paths (slicing-by-8 tables, SSE4.2 when present) must agree
  // with the bit-at-a-time reference on every length and alignment.
  uint64_t rng = 0x243F6A8885A308D3ull;
  std::vector<uint8_t> buf(8192);
  for (auto& byte : buf) byte = NextByte(&rng);
  for (size_t len : {0u, 1u, 2u, 3u, 7u, 8u, 9u, 15u, 16u, 63u, 64u, 255u,
                     1024u, 8192u}) {
    for (size_t shift : {0u, 1u, 3u, 7u}) {
      if (shift + len > buf.size()) continue;
      const void* p = buf.data() + shift;
      const uint32_t oracle = Crc32cBitwise(p, len);
      EXPECT_EQ(Crc32cTable(p, len), oracle) << len << "+" << shift;
      EXPECT_EQ(Crc32c(p, len), oracle) << len << "+" << shift;
    }
  }
}

TEST(Crc32cTest, StreamingEqualsOneShotAtAnySplit) {
  uint64_t rng = 0x13198A2E03707344ull;
  std::vector<uint8_t> buf(513);
  for (auto& byte : buf) byte = NextByte(&rng);
  const uint32_t whole = Crc32c(buf.data(), buf.size());
  for (size_t split = 0; split <= buf.size(); split += 37) {
    uint32_t s = Crc32cInit();
    s = Crc32cUpdate(s, buf.data(), split);
    s = Crc32cUpdate(s, buf.data() + split, buf.size() - split);
    EXPECT_EQ(Crc32cFinalize(s), whole) << "split " << split;
  }
}

TEST(Crc32cTest, XoredCrcsCancelButStreamingDoesNot) {
  // The v1 WAL record checksum was crc32c(header) ^ crc32c(payload). CRC
  // is linear over GF(2): flipping the same bit pattern at the same
  // distance from the END of each part shifts both CRCs by the same
  // delta, which the XOR cancels — correlated corruption that passed the
  // old check. One streaming CRC over header||payload sees the two flips
  // at different distances from the end and catches it.
  uint64_t rng = 0xA4093822299F31D0ull;
  std::vector<uint8_t> header(24), payload(512);
  for (auto& byte : header) byte = NextByte(&rng);
  for (auto& byte : payload) byte = NextByte(&rng);

  auto old_xor_check = [](const std::vector<uint8_t>& h,
                          const std::vector<uint8_t>& p) {
    return Crc32c(h.data(), h.size()) ^ Crc32c(p.data(), p.size());
  };
  auto streaming_check = [](const std::vector<uint8_t>& h,
                            const std::vector<uint8_t>& p) {
    uint32_t s = Crc32cInit();
    s = Crc32cUpdate(s, h.data(), h.size());
    s = Crc32cUpdate(s, p.data(), p.size());
    return Crc32cFinalize(s);
  };
  const uint32_t old_clean = old_xor_check(header, payload);
  const uint32_t new_clean = streaming_check(header, payload);

  // Same flip, 5 bytes from the end of each part.
  auto corrupt_header = header;
  auto corrupt_payload = payload;
  corrupt_header[header.size() - 5] ^= 0x40;
  corrupt_payload[payload.size() - 5] ^= 0x40;

  EXPECT_EQ(old_xor_check(corrupt_header, corrupt_payload), old_clean)
      << "expected the v1 XOR checksum to miss this corruption";
  EXPECT_NE(streaming_check(corrupt_header, corrupt_payload), new_clean)
      << "the streaming checksum must catch it";
}

TEST(WalTest, AppendAndReplayInOrder) {
  const std::string path = TestLog("log");
  std::vector<char> page(512, 0x11);
  {
    auto wal = std::move(WalManager::Open(path)).ValueOrDie();
    EXPECT_EQ(*wal.LogFullPage(1, 0, page.data(), 512), 1u);
    page.assign(512, 0x22);
    EXPECT_EQ(*wal.LogFullPage(1, 1, page.data(), 512), 2u);
    EXPECT_EQ(*wal.LogFullPage(2, 0, page.data(), 512), 3u);
    ASSERT_TRUE(wal.Flush().ok());
  }
  std::vector<WalRecord> seen;
  ASSERT_TRUE(WalManager::Replay(path, [&](const WalRecord& record) {
                seen.push_back(record);
                return Status::OK();
              }).ok());
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0].lsn, 1u);
  EXPECT_EQ(seen[0].rel, 1u);
  EXPECT_EQ(seen[0].payload[0], 0x11);
  EXPECT_EQ(seen[1].block, 1u);
  EXPECT_EQ(seen[2].rel, 2u);
  std::remove(path.c_str());
}

TEST(WalTest, ReopenContinuesLsnSequence) {
  const std::string path = TestLog("reopen");
  std::vector<char> page(512, 0x33);
  {
    auto wal = std::move(WalManager::Open(path)).ValueOrDie();
    ASSERT_TRUE(wal.LogFullPage(1, 0, page.data(), 512).ok());
    ASSERT_TRUE(wal.Flush().ok());
  }
  auto wal = std::move(WalManager::Open(path)).ValueOrDie();
  EXPECT_EQ(wal.next_lsn(), 2u);
  std::remove(path.c_str());
}

TEST(WalTest, ReopenAfterCheckpointDoesNotReuseLsns) {
  // Regression: Open() used to derive next_lsn by replaying, and Replay
  // skips everything at or before the last checkpoint — so a log ENDING
  // in a checkpoint record reopened with next_lsn == 1 and re-issued
  // already-used LSNs.
  const std::string path = TestLog("lsnreuse");
  std::vector<char> page(512, 0x66);
  {
    auto wal = std::move(WalManager::Open(path)).ValueOrDie();
    ASSERT_TRUE(wal.LogFullPage(1, 0, page.data(), 512).ok());  // lsn 1
    ASSERT_TRUE(wal.LogFullPage(1, 1, page.data(), 512).ok());  // lsn 2
    ASSERT_TRUE(wal.LogCheckpoint().ok());                      // lsn 3
  }
  {
    auto wal = std::move(WalManager::Open(path)).ValueOrDie();
    EXPECT_EQ(wal.next_lsn(), 4u);
    EXPECT_EQ(*wal.LogFullPage(1, 2, page.data(), 512), 4u);
    ASSERT_TRUE(wal.Flush().ok());
  }
  // The post-checkpoint record is the only one that replays, under its
  // fresh (never reused) LSN.
  std::vector<Lsn> replayed;
  ASSERT_TRUE(WalManager::Replay(path, [&](const WalRecord& record) {
                replayed.push_back(record.lsn);
                return Status::OK();
              }).ok());
  ASSERT_EQ(replayed.size(), 1u);
  EXPECT_EQ(replayed[0], 4u);
  std::remove(path.c_str());
}

TEST(WalTest, CheckpointSkipsEarlierRecords) {
  const std::string path = TestLog("ckpt");
  std::vector<char> page(512, 0x44);
  {
    auto wal = std::move(WalManager::Open(path)).ValueOrDie();
    ASSERT_TRUE(wal.LogFullPage(1, 0, page.data(), 512).ok());
    ASSERT_TRUE(wal.LogCheckpoint().ok());
    ASSERT_TRUE(wal.LogFullPage(1, 1, page.data(), 512).ok());
    ASSERT_TRUE(wal.Flush().ok());
  }
  std::vector<Lsn> replayed;
  ASSERT_TRUE(WalManager::Replay(path, [&](const WalRecord& record) {
                replayed.push_back(record.lsn);
                return Status::OK();
              }).ok());
  // Only the record after the checkpoint replays.
  ASSERT_EQ(replayed.size(), 1u);
  EXPECT_EQ(replayed[0], 3u);
  std::remove(path.c_str());
}

TEST(WalTest, RotateShrinksLogAndPreservesLsnSequence) {
  const std::string path = TestLog("rotate");
  std::vector<char> page(512, 0x77);
  Lsn next_before = 0;
  {
    auto wal = std::move(WalManager::Open(path)).ValueOrDie();
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(wal.LogFullPage(1, i, page.data(), 512).ok());
    }
    const uint64_t fat = wal.size_bytes();
    ASSERT_TRUE(wal.LogCheckpoint().ok());
    ASSERT_TRUE(wal.Rotate().ok());
    EXPECT_LT(wal.size_bytes(), fat / 10) << "rotation must shrink the log";
    next_before = wal.next_lsn();
    EXPECT_EQ(next_before, 22u);  // 20 pages + 1 checkpoint, next is 22
    // The rotated log is immediately appendable.
    EXPECT_EQ(*wal.LogFullPage(1, 99, page.data(), 512), 22u);
    ASSERT_TRUE(wal.Flush().ok());
  }
  // The fresh segment's header carries start_lsn, so a reopen (even of a
  // rotated log with no records) cannot restart the sequence.
  auto wal = std::move(WalManager::Open(path)).ValueOrDie();
  EXPECT_EQ(wal.next_lsn(), next_before + 1);
  std::vector<Lsn> replayed;
  ASSERT_TRUE(WalManager::Replay(path, [&](const WalRecord& record) {
                replayed.push_back(record.lsn);
                return Status::OK();
              }).ok());
  ASSERT_EQ(replayed.size(), 1u);
  EXPECT_EQ(replayed[0], 22u);
  std::remove(path.c_str());
}

TEST(WalTest, TornTailIsTruncatedNotFatal) {
  const std::string path = TestLog("torn");
  std::vector<char> page(512, 0x55);
  {
    auto wal = std::move(WalManager::Open(path)).ValueOrDie();
    ASSERT_TRUE(wal.LogFullPage(1, 0, page.data(), 512).ok());
    ASSERT_TRUE(wal.LogFullPage(1, 1, page.data(), 512).ok());
    ASSERT_TRUE(wal.Flush().ok());
  }
  // Chop bytes off the second record to simulate a crash mid-append.
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  ASSERT_EQ(ftruncate(fileno(f), size - 100), 0);
  std::fclose(f);

  int intact = 0;
  ASSERT_TRUE(WalManager::Replay(path, [&](const WalRecord&) {
                ++intact;
                return Status::OK();
              }).ok());
  EXPECT_EQ(intact, 1);

  // Reopening truncates the tail and appends cleanly after the survivor.
  auto wal = std::move(WalManager::Open(path)).ValueOrDie();
  EXPECT_EQ(wal.next_lsn(), 2u);
  EXPECT_EQ(*wal.LogFullPage(1, 1, page.data(), 512), 2u);
  ASSERT_TRUE(wal.Flush().ok());
  intact = 0;
  ASSERT_TRUE(WalManager::Replay(path, [&](const WalRecord&) {
                ++intact;
                return Status::OK();
              }).ok());
  EXPECT_EQ(intact, 2);
  std::remove(path.c_str());
}

TEST(WalTest, CrashRecoveryRestoresUnflushedPages) {
  // Write rows through a WAL-attached buffer manager, "crash" before
  // FlushAll, and recover the storage from the log alone.
  const std::string data_dir = TestDir("data");
  const std::string wal_path = data_dir + "/wal.log";

  RelId rel;
  {
    auto smgr = std::make_unique<StorageManager>(
        StorageManager::Open(data_dir, 8192).ValueOrDie());
    auto wal = std::move(WalManager::Open(wal_path)).ValueOrDie();
    BufferManager bufmgr(smgr.get(), 64);
    bufmgr.SetWal(&wal);

    auto table = std::move(pgstub::HeapTable::Create(&bufmgr, smgr.get(),
                                                     "t", 4))
                     .ValueOrDie();
    rel = table.rel();
    const float vec[4] = {1.f, 2.f, 3.f, 4.f};
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(table.Insert(i, vec).ok());
    }
    ASSERT_TRUE(bufmgr.wal_error().ok());
    ASSERT_TRUE(wal.Flush().ok());
    // CRASH: destructors run, but dirty pages were never flushed. The
    // relation file contains zero pages beyond what NewPage pre-extended.
  }

  // Recovery: a fresh storage manager re-attaches the relation from its
  // manifest (no re-creation — ids are durable now), then REDO fills in
  // the page images the crash swallowed.
  auto smgr = std::make_unique<StorageManager>(
      StorageManager::Open(data_dir, 8192).ValueOrDie());
  ASSERT_EQ(*smgr->FindRelation("t"), rel);
  ASSERT_TRUE(WalManager::Recover(wal_path, smgr.get()).ok());

  // The recovered pages contain all 50 tuples, and the heap re-attaches.
  BufferManager bufmgr(smgr.get(), 64);
  size_t rows = 0;
  auto blocks = std::move(smgr->NumBlocks(rel)).ValueOrDie();
  for (BlockId b = 0; b < blocks; ++b) {
    auto handle = std::move(bufmgr.Pin(rel, b)).ValueOrDie();
    PageView page(handle.data, 8192);
    EXPECT_TRUE(page.Check().ok());
    rows += page.ItemCount();
    bufmgr.Unpin(handle, false);
  }
  EXPECT_EQ(rows, 50u);
  auto table =
      std::move(HeapTable::Attach(&bufmgr, smgr.get(), "t", 4)).ValueOrDie();
  EXPECT_EQ(table.num_rows(), 50u);
}

TEST(WalTest, RecoverCollectsTombstonesAndSkipsDroppedRelations) {
  const std::string data_dir = TestDir("tomb");
  const std::string wal_path = data_dir + "/wal.log";
  {
    auto smgr = std::make_unique<StorageManager>(
        StorageManager::Open(data_dir, 8192).ValueOrDie());
    auto keep = std::move(smgr->CreateRelation("keep")).ValueOrDie();
    auto gone = std::move(smgr->CreateRelation("gone")).ValueOrDie();
    auto wal = std::move(WalManager::Open(wal_path)).ValueOrDie();
    std::vector<char> page(8192, 0x5A);
    ASSERT_TRUE(wal.LogFullPage(keep, 0, page.data(), 8192).ok());
    ASSERT_TRUE(wal.LogFullPage(gone, 0, page.data(), 8192).ok());
    ASSERT_TRUE(wal.LogTombstone(keep, 7).ok());
    ASSERT_TRUE(wal.LogTombstone(keep, 9).ok());
    ASSERT_TRUE(wal.Flush().ok());
    ASSERT_TRUE(smgr->DropRelation(gone).ok());
    // crash
  }
  auto smgr = std::make_unique<StorageManager>(
      StorageManager::Open(data_dir, 8192).ValueOrDie());
  std::vector<WalTombstone> tombstones;
  ASSERT_TRUE(WalManager::Recover(Vfs::Default(), wal_path, smgr.get(),
                                  &tombstones)
                  .ok());
  // The dropped relation's image was skipped, not resurrected.
  EXPECT_TRUE(smgr->FindRelation("gone").status().IsNotFound());
  auto keep = std::move(smgr->FindRelation("keep")).ValueOrDie();
  EXPECT_EQ(*smgr->NumBlocks(keep), 1u);
  ASSERT_EQ(tombstones.size(), 2u);
  EXPECT_EQ(tombstones[0].rel, keep);
  EXPECT_EQ(tombstones[0].row_id, 7);
  EXPECT_EQ(tombstones[1].row_id, 9);
}

}  // namespace
}  // namespace vecdb::pgstub
