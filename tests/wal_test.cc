#include "pgstub/wal.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <memory>

#include "pgstub/bufmgr.h"
#include "pgstub/heap_table.h"

namespace vecdb::pgstub {
namespace {

std::string TestDir(const char* suffix) {
  return ::testing::TempDir() + "/wal_" +
         ::testing::UnitTest::GetInstance()->current_test_info()->name() +
         "_" + suffix;
}

TEST(Crc32cTest, KnownValuesAndSensitivity) {
  // CRC-32C of "123456789" is the classic check value 0xE3069283.
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(Crc32c("", 0), 0u);
  const char a[] = "hello";
  const char b[] = "hellp";
  EXPECT_NE(Crc32c(a, 5), Crc32c(b, 5));
}

TEST(WalTest, AppendAndReplayInOrder) {
  const std::string path = TestDir("log") + ".wal";
  std::vector<char> page(512, 0x11);
  {
    auto wal = std::move(WalManager::Open(path)).ValueOrDie();
    EXPECT_EQ(*wal.LogFullPage(1, 0, page.data(), 512), 1u);
    page.assign(512, 0x22);
    EXPECT_EQ(*wal.LogFullPage(1, 1, page.data(), 512), 2u);
    EXPECT_EQ(*wal.LogFullPage(2, 0, page.data(), 512), 3u);
    ASSERT_TRUE(wal.Flush().ok());
  }
  std::vector<WalRecord> seen;
  ASSERT_TRUE(WalManager::Replay(path, [&](const WalRecord& record) {
                seen.push_back(record);
                return Status::OK();
              }).ok());
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0].lsn, 1u);
  EXPECT_EQ(seen[0].rel, 1u);
  EXPECT_EQ(seen[0].payload[0], 0x11);
  EXPECT_EQ(seen[1].block, 1u);
  EXPECT_EQ(seen[2].rel, 2u);
  std::remove(path.c_str());
}

TEST(WalTest, ReopenContinuesLsnSequence) {
  const std::string path = TestDir("reopen") + ".wal";
  std::vector<char> page(512, 0x33);
  {
    auto wal = std::move(WalManager::Open(path)).ValueOrDie();
    ASSERT_TRUE(wal.LogFullPage(1, 0, page.data(), 512).ok());
    ASSERT_TRUE(wal.Flush().ok());
  }
  auto wal = std::move(WalManager::Open(path)).ValueOrDie();
  EXPECT_EQ(wal.next_lsn(), 2u);
  std::remove(path.c_str());
}

TEST(WalTest, CheckpointSkipsEarlierRecords) {
  const std::string path = TestDir("ckpt") + ".wal";
  std::vector<char> page(512, 0x44);
  {
    auto wal = std::move(WalManager::Open(path)).ValueOrDie();
    ASSERT_TRUE(wal.LogFullPage(1, 0, page.data(), 512).ok());
    ASSERT_TRUE(wal.LogCheckpoint().ok());
    ASSERT_TRUE(wal.LogFullPage(1, 1, page.data(), 512).ok());
    ASSERT_TRUE(wal.Flush().ok());
  }
  std::vector<Lsn> replayed;
  ASSERT_TRUE(WalManager::Replay(path, [&](const WalRecord& record) {
                replayed.push_back(record.lsn);
                return Status::OK();
              }).ok());
  // Only the record after the checkpoint replays.
  ASSERT_EQ(replayed.size(), 1u);
  EXPECT_EQ(replayed[0], 3u);
  std::remove(path.c_str());
}

TEST(WalTest, TornTailIsTruncatedNotFatal) {
  const std::string path = TestDir("torn") + ".wal";
  std::vector<char> page(512, 0x55);
  {
    auto wal = std::move(WalManager::Open(path)).ValueOrDie();
    ASSERT_TRUE(wal.LogFullPage(1, 0, page.data(), 512).ok());
    ASSERT_TRUE(wal.LogFullPage(1, 1, page.data(), 512).ok());
    ASSERT_TRUE(wal.Flush().ok());
  }
  // Chop bytes off the second record to simulate a crash mid-append.
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  ASSERT_EQ(ftruncate(fileno(f), size - 100), 0);
  std::fclose(f);

  int intact = 0;
  ASSERT_TRUE(WalManager::Replay(path, [&](const WalRecord&) {
                ++intact;
                return Status::OK();
              }).ok());
  EXPECT_EQ(intact, 1);
  std::remove(path.c_str());
}

TEST(WalTest, CrashRecoveryRestoresUnflushedPages) {
  // Write rows through a WAL-attached buffer manager, "crash" before
  // FlushAll, and recover the storage from the log alone.
  const std::string data_dir = TestDir("data");
  const std::string wal_path = TestDir("x") + ".wal";

  RelId rel;
  {
    auto smgr = std::make_unique<StorageManager>(
        StorageManager::Open(data_dir, 8192).ValueOrDie());
    auto wal = std::move(WalManager::Open(wal_path)).ValueOrDie();
    BufferManager bufmgr(smgr.get(), 64);
    bufmgr.SetWal(&wal);

    auto table = std::move(pgstub::HeapTable::Create(&bufmgr, smgr.get(),
                                                     "t", 4))
                     .ValueOrDie();
    rel = table.rel();
    const float vec[4] = {1.f, 2.f, 3.f, 4.f};
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(table.Insert(i, vec).ok());
    }
    ASSERT_TRUE(bufmgr.wal_error().ok());
    ASSERT_TRUE(wal.Flush().ok());
    // CRASH: destructors run, but dirty pages were never flushed. The
    // relation file contains zero pages beyond what NewPage pre-extended.
  }

  // Recovery: fresh storage manager over the same directory.
  auto smgr = std::make_unique<StorageManager>(
      StorageManager::Open(data_dir, 8192).ValueOrDie());
  auto recreated = smgr->CreateRelation("t");  // same rel id 0
  ASSERT_TRUE(recreated.ok());
  ASSERT_EQ(*recreated, rel);
  ASSERT_TRUE(WalManager::Recover(wal_path, smgr.get()).ok());

  // The recovered pages contain all 50 tuples.
  BufferManager bufmgr(smgr.get(), 64);
  size_t rows = 0;
  auto blocks = std::move(smgr->NumBlocks(rel)).ValueOrDie();
  for (BlockId b = 0; b < blocks; ++b) {
    auto handle = std::move(bufmgr.Pin(rel, b)).ValueOrDie();
    PageView page(handle.data, 8192);
    EXPECT_TRUE(page.Check().ok());
    rows += page.ItemCount();
    bufmgr.Unpin(handle, false);
  }
  EXPECT_EQ(rows, 50u);
  std::remove(wal_path.c_str());
}

}  // namespace
}  // namespace vecdb::pgstub
