// Incremental insert (aminsert) tests: every IVF/HNSW index can grow after
// Build, new rows are findable, and the SQL layer keeps indexes in sync.
#include <gtest/gtest.h>

#include <filesystem>

#include <memory>

#include "datasets/synthetic.h"
#include "faisslike/hnsw.h"
#include "faisslike/ivf_flat.h"
#include "faisslike/ivf_pq.h"
#include "faisslike/ivf_sq8.h"
#include "pase/hnsw.h"
#include "pase/ivf_flat.h"
#include "sql/database.h"
#include "sql/session.h"

namespace vecdb {
namespace {

Dataset TestData() {
  SyntheticOptions opt;
  opt.dim = 16;
  opt.num_base = 600;
  opt.num_queries = 4;
  return GenerateClustered(opt);
}

/// Builds on the first half, inserts the second half, verifies a probe
/// vector from the second half is retrievable as its own nearest neighbor.
template <typename IndexT>
void CheckIncrementalGrowth(IndexT& index, const Dataset& ds,
                            SearchParams params) {
  const size_t half = ds.num_base / 2;
  ASSERT_TRUE(index.Build(ds.base.data(), half).ok());
  for (size_t i = half; i < ds.num_base; ++i) {
    ASSERT_TRUE(index.Insert(ds.base_vector(i)).ok()) << i;
  }
  EXPECT_EQ(index.NumVectors(), ds.num_base);
  const size_t probe = half + 7;
  auto results = index.Search(ds.base_vector(probe), params).ValueOrDie();
  ASSERT_FALSE(results.empty());
  EXPECT_EQ(results[0].id, static_cast<int64_t>(probe));
  EXPECT_NEAR(results[0].dist, 0.f, 1e-5f);
}

TEST(InsertTest, FaissIvfFlatGrows) {
  auto ds = TestData();
  faisslike::IvfFlatOptions opt;
  opt.num_clusters = 8;
  opt.sample_ratio = 1.0;
  faisslike::IvfFlatIndex index(ds.dim, opt);
  SearchParams params;
  params.k = 5;
  params.nprobe = 8;
  CheckIncrementalGrowth(index, ds, params);
}

TEST(InsertTest, FaissIvfPqGrows) {
  auto ds = TestData();
  faisslike::IvfPqOptions opt;
  opt.num_clusters = 8;
  opt.pq_m = 4;
  opt.pq_codes = 32;
  opt.sample_ratio = 1.0;
  faisslike::IvfPqIndex index(ds.dim, opt);
  const size_t half = ds.num_base / 2;
  ASSERT_TRUE(index.Build(ds.base.data(), half).ok());
  for (size_t i = half; i < ds.num_base; ++i) {
    ASSERT_TRUE(index.Insert(ds.base_vector(i)).ok());
  }
  EXPECT_EQ(index.NumVectors(), ds.num_base);
  // PQ is lossy: require the probe in the top-5, not rank 0 exactly.
  SearchParams params;
  params.k = 5;
  params.nprobe = 8;
  const size_t probe = half + 7;
  auto results = index.Search(ds.base_vector(probe), params).ValueOrDie();
  bool found = false;
  for (const auto& nb : results) {
    if (nb.id == static_cast<int64_t>(probe)) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(InsertTest, FaissIvfSq8Grows) {
  auto ds = TestData();
  faisslike::IvfSq8Options opt;
  opt.num_clusters = 8;
  opt.sample_ratio = 1.0;
  faisslike::IvfSq8Index index(ds.dim, opt);
  SearchParams params;
  params.k = 5;
  params.nprobe = 8;
  const size_t half = ds.num_base / 2;
  ASSERT_TRUE(index.Build(ds.base.data(), half).ok());
  for (size_t i = half; i < ds.num_base; ++i) {
    ASSERT_TRUE(index.Insert(ds.base_vector(i)).ok());
  }
  const size_t probe = half + 7;
  auto results = index.Search(ds.base_vector(probe), params).ValueOrDie();
  EXPECT_EQ(results[0].id, static_cast<int64_t>(probe));
}

TEST(InsertTest, FaissHnswGrows) {
  auto ds = TestData();
  faisslike::HnswOptions opt;
  opt.bnn = 8;
  opt.efb = 20;
  faisslike::HnswIndex index(ds.dim, opt);
  SearchParams params;
  params.k = 5;
  params.efs = 50;
  CheckIncrementalGrowth(index, ds, params);
}

class PaseInsertTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const std::string dir =
        ::testing::TempDir() + "/insert_" +
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir);
    smgr_ = std::make_unique<pgstub::StorageManager>(
        pgstub::StorageManager::Open(dir, 8192).ValueOrDie());
    bufmgr_ = std::make_unique<pgstub::BufferManager>(smgr_.get(), 4096);
  }
  pase::PaseEnv Env() { return {smgr_.get(), bufmgr_.get()}; }

  std::unique_ptr<pgstub::StorageManager> smgr_;
  std::unique_ptr<pgstub::BufferManager> bufmgr_;
};

TEST_F(PaseInsertTest, PaseIvfFlatGrows) {
  auto ds = TestData();
  pase::PaseIvfFlatOptions opt;
  opt.num_clusters = 8;
  opt.sample_ratio = 1.0;
  pase::PaseIvfFlatIndex index(Env(), ds.dim, opt);
  SearchParams params;
  params.k = 5;
  params.nprobe = 8;
  CheckIncrementalGrowth(index, ds, params);
}

TEST_F(PaseInsertTest, PaseHnswGrows) {
  auto ds = TestData();
  pase::PaseHnswOptions opt;
  opt.bnn = 8;
  opt.efb = 20;
  pase::PaseHnswIndex index(Env(), ds.dim, opt);
  SearchParams params;
  params.k = 5;
  params.efs = 50;
  CheckIncrementalGrowth(index, ds, params);
}

TEST_F(PaseInsertTest, InsertBeforeBuildFails) {
  auto ds = TestData();
  pase::PaseIvfFlatOptions opt;
  pase::PaseIvfFlatIndex index(Env(), ds.dim, opt);
  EXPECT_FALSE(index.Insert(ds.base_vector(0)).ok());
}

TEST(SqlInsertTest, InsertAfterIndexIsSearchable) {
  const std::string dir = ::testing::TempDir() + "/sql_insert_after";
  std::filesystem::remove_all(dir);
  auto db = std::move(sql::MiniDatabase::Open(dir)).ValueOrDie();
  auto session = db->CreateSession();
  ASSERT_TRUE(session->Execute("CREATE TABLE t (id int, vec float[2])").ok());
  std::string insert = "INSERT INTO t VALUES ";
  for (int i = 0; i < 32; ++i) {
    if (i > 0) insert += ", ";
    insert += "(" + std::to_string(i) + ", '" + std::to_string(i) + ",0')";
  }
  ASSERT_TRUE(session->Execute(insert).ok());
  ASSERT_TRUE(session->Execute("CREATE INDEX i ON t USING ivfflat (vec) WITH "
                          "(clusters=4, sample_ratio=1)")
                  .ok());
  // Insert a new row AFTER the index exists; it must be index-visible.
  ASSERT_TRUE(session->Execute("INSERT INTO t VALUES (999, '100,0')").ok());
  auto result =
      session->Execute("SELECT id FROM t ORDER BY vec <-> '100,0' "
                  "OPTIONS (nprobe=4) LIMIT 1");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0].id, 999);
}

}  // namespace
}  // namespace vecdb
