#include "pgstub/bufmgr.h"

#include <gtest/gtest.h>

#include <filesystem>

#include <atomic>
#include <cstring>
#include <memory>
#include <thread>

namespace vecdb::pgstub {
namespace {

class BufMgrTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/bufmgr_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    smgr_ = std::make_unique<StorageManager>(
        StorageManager::Open(dir_, 4096).ValueOrDie());
    rel_ = smgr_->CreateRelation("t").ValueOrDie();
  }

  std::string dir_;
  std::unique_ptr<StorageManager> smgr_;
  RelId rel_;
};

TEST_F(BufMgrTest, NewPagePinAndWrite) {
  BufferManager bufmgr(smgr_.get(), 8);
  auto [block, handle] = bufmgr.NewPage(rel_).ValueOrDie();
  EXPECT_EQ(block, 0u);
  ASSERT_TRUE(handle.valid());
  std::memset(handle.data, 0x42, 4096);
  bufmgr.Unpin(handle, /*dirty=*/true);
  ASSERT_TRUE(bufmgr.FlushAll().ok());

  std::vector<char> raw(4096);
  ASSERT_TRUE(smgr_->ReadBlock(rel_, 0, raw.data()).ok());
  for (char c : raw) EXPECT_EQ(static_cast<unsigned char>(c), 0x42);
}

TEST_F(BufMgrTest, PinHitAvoidsDiskRead) {
  BufferManager bufmgr(smgr_.get(), 8);
  auto fresh = bufmgr.NewPage(rel_).ValueOrDie();
  bufmgr.Unpin(fresh.second, true);
  bufmgr.ResetStats();
  auto h1 = bufmgr.Pin(rel_, 0).ValueOrDie();
  bufmgr.Unpin(h1, false);
  auto h2 = bufmgr.Pin(rel_, 0).ValueOrDie();
  bufmgr.Unpin(h2, false);
  EXPECT_EQ(bufmgr.stats().hits, 2u);
  EXPECT_EQ(bufmgr.stats().misses, 0u);
}

TEST_F(BufMgrTest, EvictionWritesBackDirtyPages) {
  BufferManager bufmgr(smgr_.get(), 4);
  // Create 10 pages through a 4-frame pool; earlier dirty pages must be
  // written back during eviction and read back intact.
  for (int i = 0; i < 10; ++i) {
    auto [block, handle] = bufmgr.NewPage(rel_).ValueOrDie();
    std::memset(handle.data, i, 4096);
    bufmgr.Unpin(handle, true);
  }
  EXPECT_GT(bufmgr.stats().evictions, 0u);
  for (int i = 0; i < 10; ++i) {
    auto handle = bufmgr.Pin(rel_, static_cast<BlockId>(i)).ValueOrDie();
    EXPECT_EQ(handle.data[100], static_cast<char>(i)) << "block " << i;
    bufmgr.Unpin(handle, false);
  }
}

TEST_F(BufMgrTest, AllPinnedIsResourceExhausted) {
  BufferManager bufmgr(smgr_.get(), 2);
  auto a = bufmgr.NewPage(rel_).ValueOrDie();
  auto b = bufmgr.NewPage(rel_).ValueOrDie();
  auto c = bufmgr.NewPage(rel_);
  EXPECT_TRUE(c.status().IsResourceExhausted());
  bufmgr.Unpin(a.second, false);
  bufmgr.Unpin(b.second, false);
  EXPECT_TRUE(bufmgr.NewPage(rel_).ok());
}

TEST_F(BufMgrTest, PinnedPageSurvivesEvictionPressure) {
  BufferManager bufmgr(smgr_.get(), 3);
  auto pinned = bufmgr.NewPage(rel_).ValueOrDie();
  std::memset(pinned.second.data, 0x77, 4096);
  for (int i = 0; i < 8; ++i) {
    auto other = bufmgr.NewPage(rel_).ValueOrDie();
    bufmgr.Unpin(other.second, true);
  }
  // The pinned frame must still hold our bytes.
  EXPECT_EQ(static_cast<unsigned char>(pinned.second.data[5]), 0x77);
  bufmgr.Unpin(pinned.second, true);
}

TEST_F(BufMgrTest, InvalidateRelationDropsCleanMappings) {
  BufferManager bufmgr(smgr_.get(), 8);
  auto fresh = bufmgr.NewPage(rel_).ValueOrDie();
  bufmgr.Unpin(fresh.second, true);
  ASSERT_TRUE(bufmgr.FlushAll().ok());
  ASSERT_TRUE(bufmgr.InvalidateRelation(rel_).ok());
  bufmgr.ResetStats();
  auto handle = bufmgr.Pin(rel_, 0).ValueOrDie();
  bufmgr.Unpin(handle, false);
  EXPECT_EQ(bufmgr.stats().misses, 1u);
}

TEST_F(BufMgrTest, InvalidateRefusesPinnedPages) {
  BufferManager bufmgr(smgr_.get(), 8);
  auto fresh = bufmgr.NewPage(rel_).ValueOrDie();
  EXPECT_FALSE(bufmgr.InvalidateRelation(rel_).ok());
  bufmgr.Unpin(fresh.second, false);
  EXPECT_TRUE(bufmgr.InvalidateRelation(rel_).ok());
}

TEST_F(BufMgrTest, FlushAllRefusesWhileDirtyPagePinned) {
  // Pin holders mutate page bytes outside the lock, so flushing a
  // pinned-dirty frame would write a torn image; FlushAll must refuse
  // until the pin drains, then flush normally.
  BufferManager bufmgr(smgr_.get(), 8);
  auto [block, handle] = bufmgr.NewPage(rel_).ValueOrDie();
  std::memset(handle.data, 0x17, 4096);
  bufmgr.Unpin(handle, /*dirty=*/true);
  auto repin = bufmgr.Pin(rel_, block).ValueOrDie();
  EXPECT_FALSE(bufmgr.FlushAll().ok());  // dirty + pinned
  bufmgr.Unpin(repin, /*dirty=*/false);
  ASSERT_TRUE(bufmgr.FlushAll().ok());

  std::vector<char> raw(4096);
  ASSERT_TRUE(smgr_->ReadBlock(rel_, block, raw.data()).ok());
  EXPECT_EQ(static_cast<unsigned char>(raw[100]), 0x17);
}

TEST_F(BufMgrTest, HotFramesAreStillEvictableUnderPressure) {
  // Regression: frames with saturated usage counters (pinned/unpinned many
  // times) must still yield a victim — the sweep needs more than two
  // rotations, not a false "all frames pinned".
  BufferManager bufmgr(smgr_.get(), 4);
  for (int i = 0; i < 4; ++i) {
    auto fresh = bufmgr.NewPage(rel_).ValueOrDie();
    bufmgr.Unpin(fresh.second, true);
  }
  // Saturate every frame's usage counter.
  for (int round = 0; round < 10; ++round) {
    for (BlockId b = 0; b < 4; ++b) {
      auto handle = bufmgr.Pin(rel_, b).ValueOrDie();
      bufmgr.Unpin(handle, false);
    }
  }
  // Allocating a fifth page must succeed by decaying usage counts.
  auto fresh = bufmgr.NewPage(rel_);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  bufmgr.Unpin(fresh->second, true);
}

TEST_F(BufMgrTest, ConcurrentStatsReadersDoNotRaceMutators) {
  // Regression (found by the Thread Safety Analysis annotation pass):
  // stats(), ResetStats(), and wal_error() used to read mutex-guarded
  // state without taking the lock — stats() even returned a reference
  // into it — racing with every locked Pin/Unpin mutation. They now
  // lock and return by value. Run readers against a Pin/Unpin hammer;
  // under the TSan leg of ci/run_checks.sh the old code fails here.
  BufferManager bufmgr(smgr_.get(), 4);
  for (int i = 0; i < 4; ++i) {
    auto fresh = bufmgr.NewPage(rel_).ValueOrDie();
    bufmgr.Unpin(fresh.second, true);
  }
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load()) {
      for (BlockId b = 0; b < 4; ++b) {
        auto handle = bufmgr.Pin(rel_, b).ValueOrDie();
        bufmgr.Unpin(handle, false);
      }
    }
  });
  uint64_t last_pins = 0;
  for (int i = 0; i < 2000; ++i) {
    const BufferStats snap = bufmgr.stats();
    // Snapshots are internally consistent and pins never move backwards
    // between two snapshots (ResetStats is not called concurrently here).
    EXPECT_GE(snap.pins, last_pins);
    last_pins = snap.pins;
    EXPECT_TRUE(bufmgr.wal_error().ok());
  }
  stop.store(true);
  writer.join();
}

TEST_F(BufMgrTest, ConcurrentResetStatsIsSafe) {
  // Companion to the reader test above: ResetStats() also used to write
  // the guarded counters without the lock. Hammer it against Pin/Unpin.
  BufferManager bufmgr(smgr_.get(), 4);
  auto fresh = bufmgr.NewPage(rel_).ValueOrDie();
  bufmgr.Unpin(fresh.second, true);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load()) {
      auto handle = bufmgr.Pin(rel_, 0).ValueOrDie();
      bufmgr.Unpin(handle, false);
    }
  });
  for (int i = 0; i < 2000; ++i) {
    bufmgr.ResetStats();
    const BufferStats snap = bufmgr.stats();
    EXPECT_EQ(snap.evictions, 0u);  // 1 page in 4 frames: never evicts
  }
  stop.store(true);
  writer.join();
}

TEST_F(BufMgrTest, PinCountsTracked) {
  BufferManager bufmgr(smgr_.get(), 8);
  auto fresh = bufmgr.NewPage(rel_).ValueOrDie();
  bufmgr.Unpin(fresh.second, true);
  const uint64_t pins_before = bufmgr.stats().pins;
  auto h = bufmgr.Pin(rel_, 0).ValueOrDie();
  bufmgr.Unpin(h, false);
  EXPECT_EQ(bufmgr.stats().pins, pins_before + 1);
}

}  // namespace
}  // namespace vecdb::pgstub
