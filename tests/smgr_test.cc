#include "pgstub/smgr.h"

#include <gtest/gtest.h>

#include <filesystem>

#include <cstring>
#include <vector>

namespace vecdb::pgstub {
namespace {

class SmgrTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/smgr_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    auto smgr = StorageManager::Open(dir_, 4096);
    ASSERT_TRUE(smgr.ok()) << smgr.status().ToString();
    smgr_ = std::make_unique<StorageManager>(std::move(*smgr));
  }
  std::string dir_;
  std::unique_ptr<StorageManager> smgr_;
};

TEST_F(SmgrTest, RejectsBadPageSize) {
  EXPECT_FALSE(StorageManager::Open("/tmp/x", 100).ok());   // < 512
  EXPECT_FALSE(StorageManager::Open("/tmp/x", 5000).ok());  // not pow2
}

TEST_F(SmgrTest, CreateFindDrop) {
  auto rel = smgr_->CreateRelation("t1");
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(*smgr_->FindRelation("t1"), *rel);
  EXPECT_TRUE(smgr_->FindRelation("nope").status().IsNotFound());
  EXPECT_TRUE(smgr_->CreateRelation("t1").status().IsAlreadyExists());
  EXPECT_TRUE(smgr_->DropRelation(*rel).ok());
  EXPECT_TRUE(smgr_->FindRelation("t1").status().IsNotFound());
  // The name becomes available again after a drop.
  EXPECT_TRUE(smgr_->CreateRelation("t1").ok());
}

TEST_F(SmgrTest, RejectsBadRelationNames) {
  EXPECT_FALSE(smgr_->CreateRelation("").ok());
  EXPECT_FALSE(smgr_->CreateRelation("a/b").ok());
}

TEST_F(SmgrTest, ExtendReadWriteRoundTrip) {
  auto rel = smgr_->CreateRelation("rw").ValueOrDie();
  EXPECT_EQ(*smgr_->NumBlocks(rel), 0u);
  auto b0 = smgr_->ExtendRelation(rel).ValueOrDie();
  auto b1 = smgr_->ExtendRelation(rel).ValueOrDie();
  EXPECT_EQ(b0, 0u);
  EXPECT_EQ(b1, 1u);
  EXPECT_EQ(*smgr_->NumBlocks(rel), 2u);

  std::vector<char> out(4096, 0x5A);
  ASSERT_TRUE(smgr_->WriteBlock(rel, 1, out.data()).ok());
  std::vector<char> in(4096);
  ASSERT_TRUE(smgr_->ReadBlock(rel, 1, in.data()).ok());
  EXPECT_EQ(std::memcmp(out.data(), in.data(), 4096), 0);

  // Fresh blocks read back zeroed.
  ASSERT_TRUE(smgr_->ReadBlock(rel, 0, in.data()).ok());
  for (char c : in) EXPECT_EQ(c, 0);
}

TEST_F(SmgrTest, OutOfRangeBlockRejected) {
  auto rel = smgr_->CreateRelation("small").ValueOrDie();
  smgr_->ExtendRelation(rel).ValueOrDie();
  std::vector<char> buf(4096);
  EXPECT_TRUE(smgr_->ReadBlock(rel, 5, buf.data()).IsOutOfRange());
  EXPECT_TRUE(smgr_->WriteBlock(rel, 5, buf.data()).IsOutOfRange());
}

TEST_F(SmgrTest, InvalidRelIdRejected) {
  std::vector<char> buf(4096);
  EXPECT_TRUE(smgr_->ReadBlock(999, 0, buf.data()).IsNotFound());
  EXPECT_TRUE(smgr_->NumBlocks(999).status().IsNotFound());
  EXPECT_TRUE(smgr_->DropRelation(999).IsNotFound());
}

TEST_F(SmgrTest, MultipleRelationsAreIndependent) {
  auto a = smgr_->CreateRelation("a").ValueOrDie();
  auto b = smgr_->CreateRelation("b").ValueOrDie();
  smgr_->ExtendRelation(a).ValueOrDie();
  std::vector<char> out(4096, 0x11);
  ASSERT_TRUE(smgr_->WriteBlock(a, 0, out.data()).ok());
  EXPECT_EQ(*smgr_->NumBlocks(b), 0u);
  smgr_->ExtendRelation(b).ValueOrDie();
  std::vector<char> in(4096);
  ASSERT_TRUE(smgr_->ReadBlock(b, 0, in.data()).ok());
  for (char c : in) EXPECT_EQ(c, 0);
}

}  // namespace
}  // namespace vecdb::pgstub
