#include "sql/parser.h"

#include <gtest/gtest.h>

namespace vecdb::sql {
namespace {

TEST(ParserTest, CreateTable) {
  auto stmt = Parse("CREATE TABLE items (id int, vec float[128]);")
                  .ValueOrDie();
  ASSERT_EQ(stmt.kind, Statement::Kind::kCreateTable);
  EXPECT_EQ(stmt.create_table->table, "items");
  EXPECT_EQ(stmt.create_table->id_column, "id");
  EXPECT_EQ(stmt.create_table->vec_column, "vec");
  EXPECT_EQ(stmt.create_table->dim, 128u);
}

TEST(ParserTest, CreateTableRequiresDimension) {
  EXPECT_FALSE(Parse("CREATE TABLE t (id int, vec float[])").ok());
}

TEST(ParserTest, CreateTableBadColumnType) {
  EXPECT_FALSE(Parse("CREATE TABLE t (id float[3], vec float[3])").ok());
}

TEST(ParserTest, InsertSingleAndMultiRow) {
  auto stmt =
      Parse("INSERT INTO t VALUES (1, '0.1,0.2'), (2, '[0.3, 0.4]');")
          .ValueOrDie();
  ASSERT_EQ(stmt.kind, Statement::Kind::kInsert);
  ASSERT_EQ(stmt.insert->rows.size(), 2u);
  EXPECT_EQ(stmt.insert->rows[0].id, 1);
  ASSERT_EQ(stmt.insert->rows[0].vec.size(), 2u);
  EXPECT_FLOAT_EQ(stmt.insert->rows[0].vec[1], 0.2f);
  EXPECT_FLOAT_EQ(stmt.insert->rows[1].vec[0], 0.3f);
}

TEST(ParserTest, CreateIndexWithOptions) {
  auto stmt = Parse("CREATE INDEX idx ON t USING ivfflat (vec) "
                    "WITH (clusters=256, sample_ratio=0.01, engine='faiss')")
                  .ValueOrDie();
  ASSERT_EQ(stmt.kind, Statement::Kind::kCreateIndex);
  EXPECT_EQ(stmt.create_index->index, "idx");
  EXPECT_EQ(stmt.create_index->method, "ivfflat");
  EXPECT_EQ(stmt.create_index->column, "vec");
  EXPECT_DOUBLE_EQ(stmt.create_index->options.at("clusters"), 256);
  EXPECT_DOUBLE_EQ(stmt.create_index->options.at("sample_ratio"), 0.01);
  EXPECT_EQ(stmt.create_index->engine, "faiss");
}

TEST(ParserTest, CreateIndexDefaultEngineIsPase) {
  auto stmt =
      Parse("CREATE INDEX idx ON t USING hnsw (vec) WITH (bnn=16)")
          .ValueOrDie();
  EXPECT_EQ(stmt.create_index->engine, "pase");
  EXPECT_DOUBLE_EQ(stmt.create_index->options.at("bnn"), 16);
}

TEST(ParserTest, SelectTopK) {
  auto stmt = Parse("SELECT id FROM t ORDER BY vec <-> '0.1,0.2,0.3' ASC "
                    "LIMIT 10;")
                  .ValueOrDie();
  ASSERT_EQ(stmt.kind, Statement::Kind::kSelect);
  EXPECT_EQ(stmt.select->table, "t");
  EXPECT_EQ(stmt.select->select_column, "id");
  EXPECT_EQ(stmt.select->order_column, "vec");
  EXPECT_EQ(stmt.select->metric, Metric::kL2);
  ASSERT_EQ(stmt.select->query.size(), 3u);
  EXPECT_EQ(stmt.select->limit, 10u);
}

TEST(ParserTest, SelectWithOptionsAndStar) {
  auto stmt = Parse("SELECT * FROM t ORDER BY vec <-> '[1,2]' "
                    "OPTIONS (nprobe=50, efs=100) LIMIT 5")
                  .ValueOrDie();
  EXPECT_TRUE(stmt.select->select_distance);
  EXPECT_DOUBLE_EQ(stmt.select->options.at("nprobe"), 50);
  EXPECT_DOUBLE_EQ(stmt.select->options.at("efs"), 100);
}

TEST(ParserTest, SelectMetricOperators) {
  EXPECT_EQ(Parse("SELECT id FROM t ORDER BY v <#> '1' LIMIT 1")
                .ValueOrDie()
                .select->metric,
            Metric::kInnerProduct);
  EXPECT_EQ(Parse("SELECT id FROM t ORDER BY v <=> '1' LIMIT 1")
                .ValueOrDie()
                .select->metric,
            Metric::kCosine);
}

TEST(ParserTest, ExplainSelect) {
  auto stmt = Parse("EXPLAIN SELECT id FROM t ORDER BY v <-> '1' LIMIT 1")
                  .ValueOrDie();
  EXPECT_TRUE(stmt.select->explain);
}

TEST(ParserTest, SelectRequiresLimit) {
  EXPECT_FALSE(Parse("SELECT id FROM t ORDER BY v <-> '1'").ok());
  EXPECT_FALSE(Parse("SELECT id FROM t ORDER BY v <-> '1' LIMIT 0").ok());
}

TEST(ParserTest, SelectRequiresDistanceOp) {
  EXPECT_FALSE(Parse("SELECT id FROM t ORDER BY v LIMIT 1").ok());
}

TEST(ParserTest, DropStatements) {
  auto t = Parse("DROP TABLE items").ValueOrDie();
  EXPECT_EQ(t.kind, Statement::Kind::kDrop);
  EXPECT_FALSE(t.drop->is_index);
  EXPECT_EQ(t.drop->name, "items");
  auto i = Parse("DROP INDEX idx").ValueOrDie();
  EXPECT_TRUE(i.drop->is_index);
}

TEST(ParserTest, TrailingGarbageRejected) {
  EXPECT_FALSE(Parse("DROP TABLE items extra").ok());
}

TEST(ParserTest, EmptyAndUnknownStatements) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("FROBNICATE everything").ok());
}

TEST(ParserTest, ShowMetrics) {
  auto stmt = Parse("SHOW METRICS;").ValueOrDie();
  ASSERT_EQ(stmt.kind, Statement::Kind::kShow);
  EXPECT_FALSE(stmt.show->reset);

  auto reset = Parse("show metrics reset").ValueOrDie();
  ASSERT_EQ(reset.kind, Statement::Kind::kShow);
  EXPECT_TRUE(reset.show->reset);

  EXPECT_FALSE(Parse("SHOW").ok());
  EXPECT_FALSE(Parse("SHOW TABLES").ok());
  EXPECT_FALSE(Parse("SHOW METRICS please").ok());
}

TEST(ParserTest, ShowSessions) {
  auto stmt = Parse("SHOW SESSIONS;").ValueOrDie();
  ASSERT_EQ(stmt.kind, Statement::Kind::kShow);
  EXPECT_EQ(stmt.show->what, ShowStmt::What::kSessions);
  EXPECT_FALSE(stmt.show->reset);

  auto lower = Parse("show sessions").ValueOrDie();
  EXPECT_EQ(lower.show->what, ShowStmt::What::kSessions);

  auto metrics = Parse("SHOW METRICS").ValueOrDie();
  EXPECT_EQ(metrics.show->what, ShowStmt::What::kMetrics);

  EXPECT_FALSE(Parse("SHOW SESSIONS RESET").ok());
  EXPECT_FALSE(Parse("SHOW SESSIONS extra").ok());
  auto bad = Parse("SHOW GARBAGE");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("METRICS or SESSIONS"),
            std::string::npos);
}

TEST(ParserTest, SetSessionOption) {
  auto stmt = Parse("SET statement_timeout_ms = 250;").ValueOrDie();
  ASSERT_EQ(stmt.kind, Statement::Kind::kSet);
  EXPECT_EQ(stmt.set->name, "statement_timeout_ms");
  EXPECT_DOUBLE_EQ(stmt.set->value, 250.0);

  auto fractional = Parse("set nprobe = 1.5").ValueOrDie();
  EXPECT_EQ(fractional.set->name, "nprobe");
  EXPECT_DOUBLE_EQ(fractional.set->value, 1.5);

  EXPECT_FALSE(Parse("SET").ok());
  EXPECT_FALSE(Parse("SET statement_timeout_ms").ok());
  EXPECT_FALSE(Parse("SET statement_timeout_ms = ").ok());
  EXPECT_FALSE(Parse("SET statement_timeout_ms = banana").ok());
  EXPECT_FALSE(Parse("SET statement_timeout_ms = 5 extra").ok());
}

TEST(ParserTest, CancelSession) {
  auto stmt = Parse("CANCEL 7;").ValueOrDie();
  ASSERT_EQ(stmt.kind, Statement::Kind::kCancel);
  EXPECT_EQ(stmt.cancel->session_id, 7u);

  EXPECT_FALSE(Parse("CANCEL").ok());
  EXPECT_FALSE(Parse("CANCEL t").ok());
  EXPECT_FALSE(Parse("CANCEL 7 8").ok());
  // Session ids are positive integers: zero, negatives, and fractions
  // must all be rejected, not truncated.
  auto zero = Parse("CANCEL 0");
  ASSERT_FALSE(zero.ok());
  EXPECT_NE(zero.status().message().find("positive session id"),
            std::string::npos);
  EXPECT_FALSE(Parse("CANCEL -3").ok());
  EXPECT_FALSE(Parse("CANCEL 1.5").ok());
}

TEST(VectorLiteralTest, PlainAndBracketed) {
  auto a = ParseVectorLiteral("0.5, 1.5,2.5").ValueOrDie();
  ASSERT_EQ(a.size(), 3u);
  EXPECT_FLOAT_EQ(a[2], 2.5f);
  auto b = ParseVectorLiteral("[ -1, 2e-1 ]").ValueOrDie();
  ASSERT_EQ(b.size(), 2u);
  EXPECT_FLOAT_EQ(b[0], -1.f);
  EXPECT_FLOAT_EQ(b[1], 0.2f);
}

TEST(VectorLiteralTest, Malformed) {
  EXPECT_FALSE(ParseVectorLiteral("").ok());
  EXPECT_FALSE(ParseVectorLiteral("a,b").ok());
  EXPECT_FALSE(ParseVectorLiteral("1,2]").ok());
}

}  // namespace
}  // namespace vecdb::sql
