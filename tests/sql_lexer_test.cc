#include "sql/lexer.h"

#include <gtest/gtest.h>

namespace vecdb::sql {
namespace {

TEST(LexerTest, KeywordsAreCaseInsensitiveAndUppercased) {
  auto tokens = Tokenize("select FROM Order").ValueOrDie();
  ASSERT_EQ(tokens.size(), 4u);  // + EOF
  EXPECT_EQ(tokens[0].type, TokenType::kKeyword);
  EXPECT_EQ(tokens[0].text, "SELECT");
  EXPECT_EQ(tokens[1].text, "FROM");
  EXPECT_EQ(tokens[2].text, "ORDER");
  EXPECT_EQ(tokens[3].type, TokenType::kEof);
}

TEST(LexerTest, IdentifiersFoldToLowercase) {
  auto tokens = Tokenize("MyTable my_col").ValueOrDie();
  EXPECT_EQ(tokens[0].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[0].text, "mytable");
  EXPECT_EQ(tokens[1].text, "my_col");
}

TEST(LexerTest, NumbersIncludingNegativeAndScientific) {
  auto tokens = Tokenize("10 -3.5 0.01 2e3").ValueOrDie();
  EXPECT_DOUBLE_EQ(tokens[0].number, 10);
  EXPECT_DOUBLE_EQ(tokens[1].number, -3.5);
  EXPECT_DOUBLE_EQ(tokens[2].number, 0.01);
  EXPECT_DOUBLE_EQ(tokens[3].number, 2000);
}

TEST(LexerTest, StringLiteralsWithEscapedQuote) {
  auto tokens = Tokenize("'0.1,0.2' 'it''s'").ValueOrDie();
  EXPECT_EQ(tokens[0].type, TokenType::kString);
  EXPECT_EQ(tokens[0].text, "0.1,0.2");
  EXPECT_EQ(tokens[1].text, "it's");
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Tokenize("'oops").ok());
}

TEST(LexerTest, DistanceOperators) {
  auto tokens = Tokenize("<-> <#> <=>").ValueOrDie();
  EXPECT_EQ(tokens[0].type, TokenType::kDistanceOp);
  EXPECT_EQ(tokens[0].text, "<->");
  EXPECT_EQ(tokens[1].text, "<#>");
  EXPECT_EQ(tokens[2].text, "<=>");
}

TEST(LexerTest, ComparisonOperators) {
  auto tokens = Tokenize("< <= > >= <> !=").ValueOrDie();
  EXPECT_EQ(tokens[0].type, TokenType::kLt);
  EXPECT_EQ(tokens[1].type, TokenType::kLe);
  EXPECT_EQ(tokens[2].type, TokenType::kGt);
  EXPECT_EQ(tokens[3].type, TokenType::kGe);
  EXPECT_EQ(tokens[4].type, TokenType::kNe);
  EXPECT_EQ(tokens[5].type, TokenType::kNe);
}

TEST(LexerTest, DistanceOpsWinOverComparisons) {
  // "a <-> b" must lex as a distance operator, not kLt followed by junk.
  auto tokens = Tokenize("a <-> b <= c").ValueOrDie();
  EXPECT_EQ(tokens[1].type, TokenType::kDistanceOp);
  EXPECT_EQ(tokens[3].type, TokenType::kLe);
}

TEST(LexerTest, Punctuation) {
  auto tokens = Tokenize("( ) [ ] , ; = *").ValueOrDie();
  EXPECT_EQ(tokens[0].type, TokenType::kLParen);
  EXPECT_EQ(tokens[1].type, TokenType::kRParen);
  EXPECT_EQ(tokens[2].type, TokenType::kLBracket);
  EXPECT_EQ(tokens[3].type, TokenType::kRBracket);
  EXPECT_EQ(tokens[4].type, TokenType::kComma);
  EXPECT_EQ(tokens[5].type, TokenType::kSemicolon);
  EXPECT_EQ(tokens[6].type, TokenType::kEquals);
  EXPECT_EQ(tokens[7].type, TokenType::kStar);
}

TEST(LexerTest, UnknownCharacterFails) {
  EXPECT_FALSE(Tokenize("a @ b").ok());
}

TEST(LexerTest, PositionsRecorded) {
  auto tokens = Tokenize("ab  cd").ValueOrDie();
  EXPECT_EQ(tokens[0].pos, 0u);
  EXPECT_EQ(tokens[1].pos, 4u);
}

}  // namespace
}  // namespace vecdb::sql
