#include "distance/kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/random.h"
#include "distance/metric.h"

namespace vecdb {
namespace {

float NaiveL2Sqr(const std::vector<float>& a, const std::vector<float>& b) {
  float s = 0;
  for (size_t i = 0; i < a.size(); ++i) s += (a[i] - b[i]) * (a[i] - b[i]);
  return s;
}

TEST(DistanceTest, L2SqrMatchesNaiveAcrossDims) {
  Rng rng(1);
  // Odd dims exercise the scalar tail of the unrolled kernel.
  for (size_t d : {1u, 2u, 3u, 4u, 7u, 16u, 33u, 96u, 100u, 128u, 960u}) {
    std::vector<float> a(d), b(d);
    for (size_t i = 0; i < d; ++i) {
      a[i] = rng.Gaussian();
      b[i] = rng.Gaussian();
    }
    const float expect = NaiveL2Sqr(a, b);
    EXPECT_NEAR(L2Sqr(a.data(), b.data(), d), expect,
                1e-4f * (expect + 1.f))
        << "dim " << d;
  }
}

TEST(DistanceTest, L2SqrIdenticalVectorsIsZero) {
  std::vector<float> a(128, 0.5f);
  EXPECT_FLOAT_EQ(L2Sqr(a.data(), a.data(), a.size()), 0.f);
}

TEST(DistanceTest, InnerProductMatchesNaive) {
  Rng rng(2);
  for (size_t d : {1u, 5u, 64u, 129u}) {
    std::vector<float> a(d), b(d);
    float expect = 0;
    for (size_t i = 0; i < d; ++i) {
      a[i] = rng.Gaussian();
      b[i] = rng.Gaussian();
      expect += a[i] * b[i];
    }
    EXPECT_NEAR(InnerProduct(a.data(), b.data(), d), expect,
                1e-4f * (std::abs(expect) + 1.f));
  }
}

TEST(DistanceTest, NormSqrIsSelfInnerProduct) {
  std::vector<float> a = {1.f, 2.f, 3.f};
  EXPECT_FLOAT_EQ(L2NormSqr(a.data(), 3), 14.f);
}

TEST(DistanceTest, CosineOfParallelVectorsIsZero) {
  std::vector<float> a = {1.f, 2.f, 3.f};
  std::vector<float> b = {2.f, 4.f, 6.f};
  EXPECT_NEAR(CosineDistance(a.data(), b.data(), 3), 0.f, 1e-6f);
}

TEST(DistanceTest, CosineOfOrthogonalVectorsIsOne) {
  std::vector<float> a = {1.f, 0.f};
  std::vector<float> b = {0.f, 1.f};
  EXPECT_NEAR(CosineDistance(a.data(), b.data(), 2), 1.f, 1e-6f);
}

TEST(DistanceTest, CosineWithZeroVectorDefined) {
  std::vector<float> a = {0.f, 0.f};
  std::vector<float> b = {1.f, 1.f};
  EXPECT_FLOAT_EQ(CosineDistance(a.data(), b.data(), 2), 1.f);
}

TEST(DistanceTest, MetricDispatchSmallerMeansCloser) {
  std::vector<float> q = {1.f, 0.f};
  std::vector<float> near = {0.9f, 0.1f};
  std::vector<float> far = {-1.f, 0.f};
  for (Metric m : {Metric::kL2, Metric::kInnerProduct, Metric::kCosine}) {
    EXPECT_LT(Distance(m, q.data(), near.data(), 2),
              Distance(m, q.data(), far.data(), 2))
        << MetricName(m);
  }
}

TEST(DistanceTest, BatchMatchesSingle) {
  Rng rng(3);
  const size_t d = 32, n = 50;
  std::vector<float> q(d), base(n * d), out(n);
  for (auto& v : q) v = rng.Gaussian();
  for (auto& v : base) v = rng.Gaussian();
  DistanceBatch(Metric::kL2, q.data(), base.data(), n, d, out.data());
  for (size_t i = 0; i < n; ++i) {
    EXPECT_FLOAT_EQ(out[i], L2Sqr(q.data(), base.data() + i * d, d));
  }
}

TEST(DistanceTest, MetricNames) {
  EXPECT_EQ(MetricName(Metric::kL2), "l2");
  EXPECT_EQ(MetricName(Metric::kInnerProduct), "ip");
  EXPECT_EQ(MetricName(Metric::kCosine), "cosine");
}

}  // namespace
}  // namespace vecdb
