#include "quantizer/pq.h"

#include <gtest/gtest.h>

#include <vector>

#include "datasets/synthetic.h"
#include "distance/kernels.h"

namespace vecdb {
namespace {

Dataset MakeData(uint32_t dim, size_t n, uint64_t seed = 42) {
  SyntheticOptions opt;
  opt.dim = dim;
  opt.num_base = n;
  opt.num_queries = 4;
  opt.seed = seed;
  return GenerateClustered(opt);
}

PqOptions SmallPq(uint32_t m, uint32_t codes = 16) {
  PqOptions opt;
  opt.num_subvectors = m;
  opt.num_codes = codes;
  opt.max_iterations = 5;
  return opt;
}

TEST(PqTest, RejectsBadConfigurations) {
  auto ds = MakeData(32, 100);
  PqOptions opt = SmallPq(5);  // 5 does not divide 32
  EXPECT_FALSE(ProductQuantizer::Train(ds.base.data(), 100, 32, opt).ok());
  opt = SmallPq(4, 300);  // codes > 256
  EXPECT_FALSE(ProductQuantizer::Train(ds.base.data(), 100, 32, opt).ok());
  opt = SmallPq(4, 128);  // n < c_pq
  EXPECT_FALSE(ProductQuantizer::Train(ds.base.data(), 100, 32, opt).ok());
  EXPECT_FALSE(ProductQuantizer::Train(nullptr, 100, 32, SmallPq(4)).ok());
}

TEST(PqTest, GeometryAccessors) {
  auto ds = MakeData(32, 200);
  auto pq =
      ProductQuantizer::Train(ds.base.data(), 200, 32, SmallPq(8)).ValueOrDie();
  EXPECT_EQ(pq.dim(), 32u);
  EXPECT_EQ(pq.num_subvectors(), 8u);
  EXPECT_EQ(pq.sub_dim(), 4u);
  EXPECT_EQ(pq.code_size(), 8u);
  EXPECT_EQ(pq.table_size(), 8u * 16u);
}

TEST(PqTest, EncodeDecodeReducesToNearbyVector) {
  auto ds = MakeData(32, 500);
  auto pq = ProductQuantizer::Train(ds.base.data(), 500, 32, SmallPq(8, 32))
                .ValueOrDie();
  std::vector<uint8_t> code(pq.code_size());
  std::vector<float> rec(32);
  // Reconstruction error must be much smaller than data norm on clustered
  // data.
  double err = 0, norm = 0;
  for (size_t i = 0; i < 100; ++i) {
    pq.Encode(ds.base.data() + i * 32, code.data());
    pq.Decode(code.data(), rec.data());
    err += L2Sqr(ds.base.data() + i * 32, rec.data(), 32);
    norm += L2NormSqr(ds.base.data() + i * 32, 32);
  }
  EXPECT_LT(err, 0.5 * norm);
}

TEST(PqTest, ReconstructionErrorShrinksWithMoreCodes) {
  auto ds = MakeData(16, 600, 3);
  auto coarse = ProductQuantizer::Train(ds.base.data(), 600, 16, SmallPq(4, 4))
                    .ValueOrDie();
  auto fine = ProductQuantizer::Train(ds.base.data(), 600, 16, SmallPq(4, 64))
                  .ValueOrDie();
  EXPECT_LT(fine.ReconstructionError(ds.base.data(), 300),
            coarse.ReconstructionError(ds.base.data(), 300));
}

TEST(PqTest, AdcDistanceMatchesDecodedDistance) {
  auto ds = MakeData(32, 400, 5);
  auto pq = ProductQuantizer::Train(ds.base.data(), 400, 32, SmallPq(8, 32))
                .ValueOrDie();
  std::vector<float> table(pq.table_size());
  std::vector<uint8_t> code(pq.code_size());
  std::vector<float> rec(32);
  for (size_t q = 0; q < ds.num_queries; ++q) {
    const float* query = ds.query_vector(q);
    pq.ComputeDistanceTableNaive(query, table.data());
    for (size_t i = 0; i < 50; ++i) {
      pq.Encode(ds.base.data() + i * 32, code.data());
      pq.Decode(code.data(), rec.data());
      const float adc = pq.AdcDistance(table.data(), code.data());
      const float direct = L2Sqr(query, rec.data(), 32);
      EXPECT_NEAR(adc, direct, 1e-2f * (direct + 1.f));
    }
  }
}

TEST(PqTest, OptimizedTableMatchesNaiveTable) {
  // RC#7: the optimized table is a pure implementation change — results
  // must be numerically equivalent.
  auto ds = MakeData(64, 500, 7);
  auto pq = ProductQuantizer::Train(ds.base.data(), 500, 64, SmallPq(16, 32))
                .ValueOrDie();
  std::vector<float> naive(pq.table_size()), opt(pq.table_size());
  for (size_t q = 0; q < ds.num_queries; ++q) {
    pq.ComputeDistanceTableNaive(ds.query_vector(q), naive.data());
    pq.ComputeDistanceTableOptimized(ds.query_vector(q), opt.data());
    for (size_t i = 0; i < naive.size(); ++i) {
      EXPECT_NEAR(opt[i], naive[i], 1e-2f * (naive[i] + 1.f)) << i;
    }
  }
}

TEST(PqTest, PaseStyleAndFaissStyleBothTrain) {
  auto ds = MakeData(16, 300, 9);
  PqOptions opt = SmallPq(4, 16);
  opt.style = KMeansStyle::kPaseStyle;
  opt.use_sgemm = false;
  EXPECT_TRUE(ProductQuantizer::Train(ds.base.data(), 300, 16, opt).ok());
  opt.style = KMeansStyle::kFaissStyle;
  opt.use_sgemm = true;
  EXPECT_TRUE(ProductQuantizer::Train(ds.base.data(), 300, 16, opt).ok());
}

}  // namespace
}  // namespace vecdb
