#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace vecdb::obs {
namespace {

// --- Histogram bucket math, pinned exactly -------------------------------

TEST(HistogramBuckets, ExactBelowTwoOctaves) {
  // Values below 2 * kSub (= 16) map to themselves.
  for (uint64_t v = 0; v < 2 * Histogram::kSub; ++v) {
    EXPECT_EQ(Histogram::BucketIndex(v), static_cast<size_t>(v)) << v;
    EXPECT_EQ(Histogram::BucketLowerBound(v), v) << v;
  }
}

TEST(HistogramBuckets, PinnedIndices) {
  // First log bucket: 16 and 17 share index 16 (width 2).
  EXPECT_EQ(Histogram::BucketIndex(16), 16u);
  EXPECT_EQ(Histogram::BucketIndex(17), 16u);
  EXPECT_EQ(Histogram::BucketIndex(18), 17u);
  // 500 lands in [480, 512), bucket 55 (octave msb=8, width 32).
  EXPECT_EQ(Histogram::BucketIndex(500), 55u);
  EXPECT_EQ(Histogram::BucketLowerBound(55), 480u);
  EXPECT_EQ(Histogram::BucketLowerBound(56), 512u);
  // Power-of-two boundaries start their own bucket.
  EXPECT_EQ(Histogram::BucketLowerBound(Histogram::BucketIndex(512)), 512u);
  EXPECT_EQ(Histogram::BucketLowerBound(Histogram::BucketIndex(1024)), 1024u);
}

TEST(HistogramBuckets, LowerBoundInvertsIndexEverywhere) {
  // For a spread of magnitudes: the lower bound of v's bucket is <= v, and
  // v is below the next bucket's lower bound (monotone partition).
  const std::vector<uint64_t> probes = {
      0,       1,       15,         16,        31, 32, 100, 500, 4095, 4096,
      1000000, 123456789, uint64_t{1} << 40, (uint64_t{1} << 62) + 12345};
  for (uint64_t v : probes) {
    const size_t idx = Histogram::BucketIndex(v);
    EXPECT_LE(Histogram::BucketLowerBound(idx), v) << v;
    if (idx + 1 < Histogram::kNumBuckets) {
      EXPECT_GT(Histogram::BucketLowerBound(idx + 1), v) << v;
    }
    // Relative width bound: one bucket spans at most 12.5% of its base.
    if (v >= 2 * Histogram::kSub && idx + 1 < Histogram::kNumBuckets) {
      const double lo = static_cast<double>(Histogram::BucketLowerBound(idx));
      const double hi =
          static_cast<double>(Histogram::BucketLowerBound(idx + 1));
      EXPECT_LE((hi - lo) / lo, 0.125 + 1e-9) << v;
    }
  }
}

// --- Percentile math, pinned for a known synthetic distribution ----------

TEST(HistogramPercentiles, UniformOneToThousand) {
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  EXPECT_EQ(h.TotalCount(), 1000u);
  EXPECT_EQ(h.Sum(), 500500u);
  EXPECT_EQ(h.Min(), 1u);
  EXPECT_EQ(h.Max(), 1000u);
  EXPECT_DOUBLE_EQ(h.Mean(), 500.5);
  // Pinned by the bucket layout: rank 500 interpolates to 501 inside
  // [480, 512), rank 950 to 951 inside [896, 960), and rank 990
  // extrapolates past the data so it clamps to Max().
  EXPECT_DOUBLE_EQ(h.Percentile(0.50), 501.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.95), 951.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.99), 1000.0);
}

TEST(HistogramPercentiles, SingleValueDistributionIsExact) {
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.Record(7);
  EXPECT_DOUBLE_EQ(h.Percentile(0.50), 7.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.99), 7.0);
  EXPECT_EQ(h.Min(), 7u);
  EXPECT_EQ(h.Max(), 7u);
}

TEST(HistogramPercentiles, EmptyIsZero) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 0.0);
  EXPECT_EQ(h.Min(), 0u);
  EXPECT_EQ(h.Max(), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
}

TEST(HistogramPercentiles, ClampsToRecordedRange) {
  Histogram h;
  h.Record(100);
  h.Record(100000);
  EXPECT_GE(h.Percentile(0.0), 100.0);
  EXPECT_LE(h.Percentile(1.0), 100000.0);
}

// --- Registry semantics --------------------------------------------------

TEST(MetricsRegistry, DisabledDropsAndEnabledCounts) {
  MetricsRegistry reg;
  EXPECT_FALSE(reg.enabled());
  reg.Add(Counter::kFaissQueries, 5);
  reg.Record(Hist::kFaissSearchNanos, 123);
  EXPECT_EQ(reg.Value(Counter::kFaissQueries), 0u);
  EXPECT_EQ(reg.histogram(Hist::kFaissSearchNanos).TotalCount(), 0u);

  reg.SetEnabled(true);
  reg.Add(Counter::kFaissQueries, 5);
  reg.Add(Counter::kFaissQueries);
  reg.Record(Hist::kFaissSearchNanos, 123);
  EXPECT_EQ(reg.Value(Counter::kFaissQueries), 6u);
  EXPECT_EQ(reg.histogram(Hist::kFaissSearchNanos).TotalCount(), 1u);

  reg.ResetAll();
  EXPECT_EQ(reg.Value(Counter::kFaissQueries), 0u);
  EXPECT_EQ(reg.histogram(Hist::kFaissSearchNanos).TotalCount(), 0u);
}

TEST(MetricsRegistry, ConcurrentIncrementsLoseNoUpdates) {
  MetricsRegistry reg;
  reg.SetEnabled(true);
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        reg.AddUnchecked(Counter::kBufmgrHit);
        if ((i & 1023) == 0) {
          reg.RecordUnchecked(Hist::kFaissSearchNanos, i + 1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.Value(Counter::kBufmgrHit), kThreads * kPerThread);
  // (i & 1023) == 0 fires for i = 0, 1024, ... -> ceil(kPerThread / 1024).
  EXPECT_EQ(reg.histogram(Hist::kFaissSearchNanos).TotalCount(),
            kThreads * ((kPerThread + 1023) / 1024));
}

TEST(MetricsRegistry, LatencyScopeRecordsOncePerScope) {
  MetricsRegistry reg;
  reg.SetEnabled(true);
  { LatencyScope scope(&reg, Hist::kSqlSelectNanos); }
  { LatencyScope scope(nullptr, Hist::kSqlSelectNanos); }  // one branch
  EXPECT_EQ(reg.histogram(Hist::kSqlSelectNanos).TotalCount(), 1u);
}

TEST(MetricsRegistry, ExportsCarryDottedNames) {
  MetricsRegistry reg;
  reg.SetEnabled(true);
  reg.Add(Counter::kBufmgrHit, 3);
  reg.Record(Hist::kPaseSearchNanos, 42);
  const std::string table = reg.ExportTable();
  EXPECT_NE(table.find("bufmgr.hit"), std::string::npos);
  EXPECT_NE(table.find("pase.search_nanos"), std::string::npos);
  const std::string json = reg.ExportJson();
  EXPECT_NE(json.find("\"bufmgr.hit\":3"), std::string::npos);
  EXPECT_NE(json.find("\"pase.search_nanos\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(MetricsRegistry, SessionMetricsExportUnderDottedNames) {
  // The session front end's counters and queue-wait histogram must surface
  // in both export formats so SHOW METRICS exposes admission behavior.
  MetricsRegistry reg;
  reg.SetEnabled(true);
  reg.Add(Counter::kSessionCreated, 2);
  reg.Add(Counter::kSessionClosed);
  reg.Add(Counter::kSessionQueued, 3);
  reg.Add(Counter::kSessionAdmitted, 4);
  reg.Record(Hist::kSessionQueueWaitNanos, 1234);
  const std::string table = reg.ExportTable();
  EXPECT_NE(table.find("session.created"), std::string::npos);
  EXPECT_NE(table.find("session.closed"), std::string::npos);
  EXPECT_NE(table.find("session.queued"), std::string::npos);
  EXPECT_NE(table.find("session.admitted"), std::string::npos);
  EXPECT_NE(table.find("session.queue_wait_nanos"), std::string::npos);
  const std::string json = reg.ExportJson();
  EXPECT_NE(json.find("\"session.created\":2"), std::string::npos);
  EXPECT_NE(json.find("\"session.queued\":3"), std::string::npos);
  EXPECT_NE(json.find("\"session.admitted\":4"), std::string::npos);
  EXPECT_NE(json.find("\"session.queue_wait_nanos\""), std::string::npos);
}

TEST(MetricsRegistry, CounterNamesAreUniqueAndKnown) {
  std::vector<std::string> names;
  for (uint32_t c = 0; c < static_cast<uint32_t>(Counter::kNumCounters);
       ++c) {
    names.emplace_back(CounterName(static_cast<Counter>(c)));
  }
  for (uint32_t h = 0; h < static_cast<uint32_t>(Hist::kNumHists); ++h) {
    names.emplace_back(HistName(static_cast<Hist>(h)));
  }
  for (size_t i = 0; i < names.size(); ++i) {
    EXPECT_NE(names[i], "unknown") << i;
    for (size_t j = i + 1; j < names.size(); ++j) {
      EXPECT_NE(names[i], names[j]);
    }
  }
}

TEST(SearchCounters, MergeAndFlush) {
  SearchCounters a{1, 10, 8, 2};
  SearchCounters b{2, 20, 19, 1};
  a.MergeFrom(b);
  EXPECT_EQ(a.buckets_probed, 3u);
  EXPECT_EQ(a.tuples_visited, 30u);
  EXPECT_EQ(a.heap_pushes, 27u);
  EXPECT_EQ(a.tombstones_skipped, 3u);

  MetricsRegistry reg;
  reg.SetEnabled(true);
  a.FlushTo(&reg, Counter::kFaissBucketsProbed, Counter::kFaissTuplesVisited,
            Counter::kFaissHeapPushes, Counter::kFaissTombstonesSkipped);
  EXPECT_EQ(reg.Value(Counter::kFaissBucketsProbed), 3u);
  EXPECT_EQ(reg.Value(Counter::kFaissTuplesVisited), 30u);
  EXPECT_EQ(reg.Value(Counter::kFaissHeapPushes), 27u);
  EXPECT_EQ(reg.Value(Counter::kFaissTombstonesSkipped), 3u);
}

}  // namespace
}  // namespace vecdb::obs
