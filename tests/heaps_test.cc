#include "topk/heaps.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

#include "common/random.h"

namespace vecdb {
namespace {

std::vector<Neighbor> ReferenceTopK(std::vector<Neighbor> all, size_t k) {
  std::sort(all.begin(), all.end());
  if (all.size() > k) all.resize(k);
  return all;
}

TEST(KMaxHeapTest, KeepsKSmallest) {
  KMaxHeap heap(3);
  for (int i = 10; i >= 1; --i) {
    heap.Push(static_cast<float>(i), i);
  }
  auto sorted = heap.TakeSorted();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].id, 1);
  EXPECT_EQ(sorted[1].id, 2);
  EXPECT_EQ(sorted[2].id, 3);
}

TEST(KMaxHeapTest, WorstIsInfUntilFull) {
  KMaxHeap heap(2);
  EXPECT_TRUE(std::isinf(heap.worst()));
  heap.Push(1.f, 1);
  EXPECT_TRUE(std::isinf(heap.worst()));
  heap.Push(2.f, 2);
  EXPECT_FLOAT_EQ(heap.worst(), 2.f);
  heap.Push(0.5f, 3);
  EXPECT_FLOAT_EQ(heap.worst(), 1.f);
}

TEST(KMaxHeapTest, ZeroKClampedToOne) {
  KMaxHeap heap(0);
  EXPECT_EQ(heap.capacity(), 1u);
  heap.Push(2.f, 2);
  heap.Push(1.f, 1);
  auto sorted = heap.TakeSorted();
  ASSERT_EQ(sorted.size(), 1u);
  EXPECT_EQ(sorted[0].id, 1);
}

TEST(KMaxHeapTest, FewerThanKCandidates) {
  KMaxHeap heap(10);
  heap.Push(3.f, 3);
  heap.Push(1.f, 1);
  auto sorted = heap.TakeSorted();
  ASSERT_EQ(sorted.size(), 2u);
  EXPECT_EQ(sorted[0].id, 1);
}

TEST(KMaxHeapTest, ReusableAfterTakeSorted) {
  // The batched search path keeps one heap per worker and reuses it across
  // queries. TakeSorted used to leave the heap holding moved-from entries,
  // so the next query's Push saw a full heap of garbage; it must instead
  // reset to empty at the same capacity.
  KMaxHeap heap(3);
  for (int i = 1; i <= 5; ++i) heap.Push(static_cast<float>(i), i);
  auto first = heap.TakeSorted();
  ASSERT_EQ(first.size(), 3u);
  EXPECT_EQ(first[0].id, 1);

  EXPECT_EQ(heap.size(), 0u);
  EXPECT_EQ(heap.capacity(), 3u);
  EXPECT_TRUE(std::isinf(heap.worst()));

  // Second fill must behave exactly like a fresh heap, including keeping
  // candidates worse than the first round's results.
  for (int i = 10; i <= 14; ++i) heap.Push(static_cast<float>(i), i);
  auto second = heap.TakeSorted();
  ASSERT_EQ(second.size(), 3u);
  EXPECT_EQ(second[0].id, 10);
  EXPECT_EQ(second[1].id, 11);
  EXPECT_EQ(second[2].id, 12);
}

TEST(NHeapTest, ReusableAfterPopK) {
  // PopK heapifies items_ in place; it must clear the collector so a reused
  // NHeap does not leak the previous query's candidates into the next.
  NHeap heap;
  heap.Push(2.f, 2);
  heap.Push(1.f, 1);
  auto first = heap.PopK(1);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].id, 1);
  EXPECT_EQ(heap.size(), 0u);

  heap.Push(5.f, 5);
  auto second = heap.PopK(10);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].id, 5);
}

class HeapEquivalenceTest : public ::testing::TestWithParam<size_t> {};

TEST_P(HeapEquivalenceTest, KHeapAndNHeapAgreeWithPartialSort) {
  const size_t k = GetParam();
  Rng rng(k * 7 + 1);
  std::vector<Neighbor> all;
  KMaxHeap kheap(k);
  NHeap nheap;
  for (int64_t i = 0; i < 500; ++i) {
    const float d = rng.UniformFloat();
    all.push_back({d, i});
    kheap.Push(d, i);
    nheap.Push(d, i);
  }
  auto expect = ReferenceTopK(all, k);
  EXPECT_EQ(kheap.TakeSorted(), expect);
  EXPECT_EQ(nheap.PopK(k), expect);
}

INSTANTIATE_TEST_SUITE_P(KSweep, HeapEquivalenceTest,
                         ::testing::Values(1, 2, 10, 100, 499, 500, 1000));

TEST(NHeapTest, PopKBeyondSizeReturnsAll) {
  NHeap heap;
  heap.Push(2.f, 2);
  heap.Push(1.f, 1);
  auto out = heap.PopK(10);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].id, 1);
}

TEST(NHeapTest, TieBreakById) {
  NHeap heap;
  heap.Push(1.f, 9);
  heap.Push(1.f, 3);
  heap.Push(1.f, 5);
  auto out = heap.PopK(2);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].id, 3);
  EXPECT_EQ(out[1].id, 5);
}

TEST(LockedGlobalHeapTest, ConcurrentPushesKeepTopK) {
  LockedGlobalHeap heap(50);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&heap, t] {
      Rng rng(100 + t);
      for (int i = 0; i < 2500; ++i) {
        heap.Push(rng.UniformFloat(), t * 2500 + i);
      }
    });
  }
  for (auto& th : threads) th.join();
  auto sorted = heap.TakeSorted();
  ASSERT_EQ(sorted.size(), 50u);
  for (size_t i = 1; i < sorted.size(); ++i) {
    EXPECT_LE(sorted[i - 1].dist, sorted[i].dist);
  }
}

TEST(MergeTopKTest, MergesLocalsCorrectly) {
  Rng rng(55);
  std::vector<Neighbor> all;
  std::vector<std::vector<Neighbor>> locals(4);
  for (int64_t i = 0; i < 400; ++i) {
    const float d = rng.UniformFloat();
    all.push_back({d, i});
    locals[i % 4].push_back({d, i});
  }
  // Locals are each pre-truncated top-k lists in the real flow; merging
  // untruncated lists must also work.
  auto merged = MergeTopK(locals, 25);
  EXPECT_EQ(merged, ReferenceTopK(all, 25));
}

TEST(MergeTopKTest, EmptyLocals) {
  auto merged = MergeTopK({{}, {}}, 5);
  EXPECT_TRUE(merged.empty());
}

}  // namespace
}  // namespace vecdb
