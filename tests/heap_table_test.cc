#include "pgstub/heap_table.h"

#include <gtest/gtest.h>

#include <filesystem>

#include <memory>
#include <vector>

#include "common/random.h"

namespace vecdb::pgstub {
namespace {

class HeapTableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/heap_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    smgr_ = std::make_unique<StorageManager>(
        StorageManager::Open(dir_, 8192).ValueOrDie());
    bufmgr_ = std::make_unique<BufferManager>(smgr_.get(), 64);
  }

  std::string dir_;
  std::unique_ptr<StorageManager> smgr_;
  std::unique_ptr<BufferManager> bufmgr_;
};

TEST_F(HeapTableTest, InsertAndReadBack) {
  auto table =
      HeapTable::Create(bufmgr_.get(), smgr_.get(), "t", 4).ValueOrDie();
  std::vector<float> vec = {1.f, 2.f, 3.f, 4.f};
  auto tid = table.Insert(42, vec.data()).ValueOrDie();
  EXPECT_TRUE(tid.valid());

  int64_t row_id = 0;
  std::vector<float> out(4);
  ASSERT_TRUE(table.Read(tid, &row_id, out.data()).ok());
  EXPECT_EQ(row_id, 42);
  EXPECT_EQ(out, vec);
  EXPECT_EQ(table.num_rows(), 1u);
}

TEST_F(HeapTableTest, SpillsAcrossPages) {
  // 512-dim rows (~2KB each): a few rows per 8KB page.
  auto table =
      HeapTable::Create(bufmgr_.get(), smgr_.get(), "big", 512).ValueOrDie();
  Rng rng(1);
  std::vector<float> vec(512);
  std::vector<TupleId> tids;
  for (int i = 0; i < 40; ++i) {
    for (auto& v : vec) v = rng.UniformFloat();
    tids.push_back(table.Insert(i, vec.data()).ValueOrDie());
  }
  EXPECT_GT(*smgr_->NumBlocks(table.rel()), 5u);
  // Every row is readable with the right id.
  std::vector<float> out(512);
  for (int i = 0; i < 40; ++i) {
    int64_t row_id = -1;
    ASSERT_TRUE(table.Read(tids[i], &row_id, out.data()).ok());
    EXPECT_EQ(row_id, i);
  }
}

TEST_F(HeapTableTest, SeqScanVisitsAllRowsInOrder) {
  auto table =
      HeapTable::Create(bufmgr_.get(), smgr_.get(), "scan", 8).ValueOrDie();
  std::vector<float> vec(8, 0.f);
  for (int i = 0; i < 100; ++i) {
    vec[0] = static_cast<float>(i);
    ASSERT_TRUE(table.Insert(i, vec.data()).ok());
  }
  std::vector<int64_t> seen;
  ASSERT_TRUE(table
                  .SeqScan([&](TupleId, int64_t id, const float* v) {
                    EXPECT_FLOAT_EQ(v[0], static_cast<float>(id));
                    seen.push_back(id);
                    return true;
                  })
                  .ok());
  ASSERT_EQ(seen.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(seen[i], i);
}

TEST_F(HeapTableTest, SeqScanEarlyStop) {
  auto table =
      HeapTable::Create(bufmgr_.get(), smgr_.get(), "stop", 4).ValueOrDie();
  std::vector<float> vec(4, 0.f);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(table.Insert(i, vec.data()).ok());
  int visited = 0;
  ASSERT_TRUE(table
                  .SeqScan([&](TupleId, int64_t, const float*) {
                    return ++visited < 3;
                  })
                  .ok());
  EXPECT_EQ(visited, 3);
}

TEST_F(HeapTableTest, ReadInvalidTidFails) {
  auto table =
      HeapTable::Create(bufmgr_.get(), smgr_.get(), "bad", 4).ValueOrDie();
  std::vector<float> vec(4, 0.f);
  table.Insert(1, vec.data()).ValueOrDie();
  EXPECT_FALSE(table.Read(TupleId{}, nullptr, nullptr).ok());
  EXPECT_FALSE(table.Read(TupleId{0, 99}, nullptr, nullptr).ok());
}

TEST_F(HeapTableTest, RejectsOversizedTuple) {
  // dim 4096 => 16KB tuple > 8KB page.
  EXPECT_FALSE(
      HeapTable::Create(bufmgr_.get(), smgr_.get(), "huge", 4096).ok());
}

TEST_F(HeapTableTest, RejectsZeroDim) {
  EXPECT_FALSE(HeapTable::Create(bufmgr_.get(), smgr_.get(), "zero", 0).ok());
}

}  // namespace
}  // namespace vecdb::pgstub
