// Cooperative-cancellation tests below the wire: QueryContext checkpoint
// semantics, the engine checkpoint loops (faisslike and pase, IVF and
// HNSW, serial and parallel), and the SQL layer's SET / CANCEL /
// statement_timeout_ms plumbing on an in-process Session.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <thread>

#include "core/query_context.h"
#include "datasets/ground_truth.h"
#include "datasets/synthetic.h"
#include "faisslike/hnsw.h"
#include "faisslike/ivf_flat.h"
#include "pase/hnsw.h"
#include "pase/ivf_flat.h"
#include "sql/database.h"
#include "sql/session.h"

namespace vecdb {
namespace {

TEST(QueryContextTest, CheckStopDistinguishesCancelFromTimeout) {
  QueryContext idle;
  EXPECT_FALSE(idle.StopRequested());
  EXPECT_TRUE(idle.CheckStop("x").ok());

  std::atomic<bool> flag{true};
  QueryContext cancelled;
  cancelled.cancel = &flag;
  EXPECT_TRUE(cancelled.StopRequested());
  const Status c = cancelled.CheckStop("seqscan");
  ASSERT_TRUE(c.IsCancelled());
  EXPECT_EQ(c.message(), "seqscan: statement cancelled");

  QueryContext expired;
  expired.deadline_nanos = 1;  // the steady clock passed 1ns long ago
  EXPECT_TRUE(expired.StopRequested());
  const Status t = expired.CheckStop("seqscan");
  ASSERT_TRUE(t.IsCancelled());
  EXPECT_EQ(t.message(), "seqscan: statement timeout");

  // An unset flag with no deadline never stops the statement.
  flag.store(false);
  EXPECT_FALSE(cancelled.StopRequested());
  EXPECT_TRUE(cancelled.CheckStop("seqscan").ok());
}

// --- Engine checkpoints: a pre-stopped context must abort every engine's
// search loop with Cancelled, not return partial results as success.

Dataset EngineData() {
  SyntheticOptions opt;
  opt.dim = 16;
  opt.num_base = 1200;
  opt.num_queries = 2;
  opt.num_natural_clusters = 8;
  opt.seed = 7;
  return GenerateClustered(opt);
}

SearchParams CancelledParams() {
  static std::atomic<bool> flag{true};
  SearchParams params;
  params.k = 10;
  params.nprobe = 8;
  params.efs = 64;
  params.ctx.cancel = &flag;
  return params;
}

TEST(EngineCancelTest, FaisslikeIvfFlatAbortsSerialAndParallel) {
  auto ds = EngineData();
  faisslike::IvfFlatOptions opt;
  opt.num_clusters = 8;
  faisslike::IvfFlatIndex index(ds.dim, opt);
  ASSERT_TRUE(index.Build(ds.base.data(), ds.num_base).ok());
  SearchParams params = CancelledParams();
  auto serial = index.Search(ds.query_vector(0), params);
  ASSERT_FALSE(serial.ok());
  EXPECT_TRUE(serial.status().IsCancelled()) << serial.status().ToString();
  params.num_threads = 4;
  auto parallel = index.Search(ds.query_vector(0), params);
  ASSERT_FALSE(parallel.ok());
  EXPECT_TRUE(parallel.status().IsCancelled());
}

TEST(EngineCancelTest, FaisslikeIvfFlatTimeoutMessage) {
  auto ds = EngineData();
  faisslike::IvfFlatOptions opt;
  opt.num_clusters = 8;
  faisslike::IvfFlatIndex index(ds.dim, opt);
  ASSERT_TRUE(index.Build(ds.base.data(), ds.num_base).ok());
  SearchParams params;
  params.k = 10;
  params.nprobe = 8;
  params.ctx.deadline_nanos = 1;  // already expired
  auto result = index.Search(ds.query_vector(0), params);
  ASSERT_FALSE(result.ok());
  ASSERT_TRUE(result.status().IsCancelled());
  EXPECT_NE(result.status().message().find("statement timeout"),
            std::string::npos)
      << result.status().ToString();
}

TEST(EngineCancelTest, FaisslikeHnswAborts) {
  auto ds = EngineData();
  faisslike::HnswOptions opt;
  faisslike::HnswIndex index(ds.dim, opt);
  ASSERT_TRUE(index.Build(ds.base.data(), ds.num_base).ok());
  auto result = index.Search(ds.query_vector(0), CancelledParams());
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled()) << result.status().ToString();
}

class PaseCancelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/cancel_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    smgr_ = std::make_unique<pgstub::StorageManager>(
        pgstub::StorageManager::Open(dir_, 8192).ValueOrDie());
    bufmgr_ = std::make_unique<pgstub::BufferManager>(smgr_.get(), 8192);
    ds_ = EngineData();
  }

  pase::PaseEnv Env() { return {smgr_.get(), bufmgr_.get()}; }

  std::string dir_;
  std::unique_ptr<pgstub::StorageManager> smgr_;
  std::unique_ptr<pgstub::BufferManager> bufmgr_;
  Dataset ds_;
};

TEST_F(PaseCancelTest, IvfFlatAbortsSerialAndParallel) {
  pase::PaseIvfFlatOptions opt;
  opt.num_clusters = 8;
  pase::PaseIvfFlatIndex index(Env(), ds_.dim, opt);
  ASSERT_TRUE(index.Build(ds_.base.data(), ds_.num_base).ok());
  SearchParams params = CancelledParams();
  auto serial = index.Search(ds_.query_vector(0), params);
  ASSERT_FALSE(serial.ok());
  EXPECT_TRUE(serial.status().IsCancelled()) << serial.status().ToString();
  params.num_threads = 4;
  auto parallel = index.Search(ds_.query_vector(0), params);
  ASSERT_FALSE(parallel.ok());
  EXPECT_TRUE(parallel.status().IsCancelled());
}

TEST_F(PaseCancelTest, HnswAborts) {
  pase::PaseHnswOptions opt;
  pase::PaseHnswIndex index(Env(), ds_.dim, opt);
  ASSERT_TRUE(index.Build(ds_.base.data(), ds_.num_base).ok());
  auto result = index.Search(ds_.query_vector(0), CancelledParams());
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled()) << result.status().ToString();
}

// --- SQL layer: SET / CANCEL semantics and timeout validation on an
// in-process Session (the wire path is covered by net_server_test).

class SqlCancelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const std::string dir =
        ::testing::TempDir() + "/cancel_sql_" +
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir);
    sql::DatabaseOptions options;
    options.pool_pages = 256;
    options.seqscan_delay_nanos_for_test = 100 * 1000;  // 0.1ms per row
    db_ = sql::MiniDatabase::Open(dir, options).ValueOrDie();
    session_ = db_->CreateSession();
    ASSERT_TRUE(session_
                    ->Execute("CREATE TABLE t (id int, vec float[4])")
                    .ok());
    for (int64_t first = 0; first < 2000; first += 100) {
      std::string sql = "INSERT INTO t VALUES ";
      for (int i = 0; i < 100; ++i) {
        if (i > 0) sql += ", ";
        sql += "(" + std::to_string(first + i) + ", '1,2,3," +
               std::to_string(first + i) + "')";
      }
      ASSERT_TRUE(session_->Execute(sql).ok());
    }
  }

  std::unique_ptr<sql::MiniDatabase> db_;
  std::shared_ptr<sql::Session> session_;
};

TEST_F(SqlCancelTest, SeqScanTimesOutViaOptions) {
  // Full scan: 2000 rows * 0.1ms = 200ms; the 50ms deadline aborts it.
  auto result = session_->Execute(
      "SELECT id FROM t ORDER BY vec <#> '1,1,1,1' "
      "OPTIONS (statement_timeout_ms = 50) LIMIT 5");
  ASSERT_FALSE(result.ok());
  ASSERT_TRUE(result.status().IsCancelled()) << result.status().ToString();
  EXPECT_NE(result.status().message().find("statement timeout"),
            std::string::npos);
}

TEST_F(SqlCancelTest, RequestCancelAbortsInFlightStatement) {
  std::atomic<bool> done{false};
  Status long_status;
  std::thread victim([&] {
    long_status = session_
                      ->Execute("SELECT id FROM t ORDER BY vec <#> "
                                "'1,1,1,1' LIMIT 5")
                      .status();
    done.store(true);
  });
  while (!done.load()) {
    session_->RequestCancel();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  victim.join();
  ASSERT_TRUE(long_status.IsCancelled()) << long_status.ToString();
  EXPECT_NE(long_status.message().find("statement cancelled"),
            std::string::npos);
  // The flag clears when the next statement starts: a cancel that landed
  // after the abort does not poison the session.
  EXPECT_TRUE(session_
                  ->Execute("SELECT id FROM t ORDER BY vec <#> '1,1,1,1' "
                            "OPTIONS (statement_timeout_ms = 60000) LIMIT 1")
                  .ok());
}

TEST_F(SqlCancelTest, CancelSqlValidation) {
  // CANCEL of a live session succeeds (fire-and-forget); unknown ids are
  // NotFound; the executor message is stable.
  auto other = db_->CreateSession();
  auto ok = session_->Execute("CANCEL " + std::to_string(other->id()));
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->message, "CANCEL");
  auto missing = session_->Execute("CANCEL 999999");
  ASSERT_FALSE(missing.ok());
  EXPECT_TRUE(missing.status().IsNotFound()) << missing.status().ToString();
}

TEST_F(SqlCancelTest, SetValidatesTimeoutRange) {
  EXPECT_TRUE(session_->Execute("SET statement_timeout_ms = 500").ok());
  EXPECT_TRUE(session_->Execute("SET statement_timeout_ms = 0").ok());
  // Negative and absurd timeouts are rejected up front, as is the same
  // value arriving through per-statement OPTIONS.
  EXPECT_TRUE(session_->Execute("SET statement_timeout_ms = -5")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(session_->Execute("SET statement_timeout_ms = 99999999999")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(session_
                  ->Execute("SELECT id FROM t ORDER BY vec <#> '1,1,1,1' "
                            "OPTIONS (statement_timeout_ms = -1) LIMIT 1")
                  .status()
                  .IsInvalidArgument());
}

TEST(SqlCancelOpenTest, DatabaseTimeoutOptionValidatedAtOpen) {
  const std::string dir = ::testing::TempDir() + "/cancel_open_validate";
  std::filesystem::remove_all(dir);
  sql::DatabaseOptions options;
  options.statement_timeout_ms = 25u * 60 * 60 * 1000;  // > 24h cap
  auto db = sql::MiniDatabase::Open(dir, options);
  ASSERT_FALSE(db.ok());
  EXPECT_TRUE(db.status().IsInvalidArgument()) << db.status().ToString();
}

}  // namespace
}  // namespace vecdb
