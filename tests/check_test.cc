// Death-test coverage for the VECDB_CHECK family (common/check.h) and smoke
// coverage for every CheckInvariants() self-audit in the tree.
#include "common/check.h"

#include <gtest/gtest.h>

#include <filesystem>

#include <memory>
#include <string>

#include "common/thread_pool.h"
#include "datasets/synthetic.h"
#include "faisslike/hnsw.h"
#include "faisslike/ivf_flat.h"
#include "pase/ivf_flat.h"
#include "pgstub/bufmgr.h"
#include "pgstub/heap_table.h"

namespace vecdb {
namespace {

TEST(CheckTest, PassingChecksAreSilent) {
  VECDB_CHECK(true) << "never rendered";
  VECDB_CHECK_EQ(2 + 2, 4);
  VECDB_CHECK_NE(1, 2);
  VECDB_CHECK_LT(1, 2);
  VECDB_CHECK_LE(2, 2);
  VECDB_CHECK_GT(3, 2);
  VECDB_CHECK_GE(3, 3);
}

TEST(CheckDeathTest, FailureReportsExpressionFileAndMessage) {
  EXPECT_DEATH(VECDB_CHECK(1 == 2) << "extra context 42",
               "CHECK failed: 1 == 2 at .*check_test\\.cc:[0-9]+ "
               "extra context 42");
}

TEST(CheckDeathTest, ComparisonFormsIncludeBothValues) {
  const int lhs = 3;
  const int rhs = 7;
  EXPECT_DEATH(VECDB_CHECK_EQ(lhs, rhs), "\\(3 vs 7\\)");
  EXPECT_DEATH(VECDB_CHECK_GE(lhs, rhs), "\\(3 vs 7\\)");
}

TEST(CheckTest, CheckConditionIsEvaluatedExactlyOnce) {
  int evaluations = 0;
  VECDB_CHECK([&] {
    ++evaluations;
    return true;
  }());
  EXPECT_EQ(evaluations, 1);
}

#ifdef NDEBUG
TEST(CheckTest, DCheckCompilesOutInRelease) {
  // The condition must not even be evaluated: no side effects, no abort.
  int evaluations = 0;
  VECDB_DCHECK([&] {
    ++evaluations;
    return false;
  }()) << "never reached in Release";
  VECDB_DCHECK_EQ(1, 2);
  EXPECT_EQ(evaluations, 0);
}
#else
TEST(CheckDeathTest, DCheckIsFatalInDebug) {
  EXPECT_DEATH(VECDB_DCHECK(false) << "debug only", "CHECK failed");
  EXPECT_DEATH(VECDB_DCHECK_EQ(1, 2), "CHECK failed");
}
#endif

TEST(CheckInvariantsSmoke, ThreadPool) {
  ThreadPool pool(2);
  pool.CheckInvariants();
  pool.Submit([] {});
  pool.Wait();
  pool.CheckInvariants();
}

TEST(CheckInvariantsSmoke, BufferManagerAndHeapTable) {
  const std::string dir = ::testing::TempDir() + "/check_smoke_pg";
  std::filesystem::remove_all(dir);
  auto smgr = std::make_unique<pgstub::StorageManager>(
      pgstub::StorageManager::Open(dir, 8192).ValueOrDie());
  pgstub::BufferManager bufmgr(smgr.get(), 64);
  bufmgr.CheckInvariants();

  auto table =
      pgstub::HeapTable::Create(&bufmgr, smgr.get(), "check_smoke", 8)
          .ValueOrDie();
  const float vec[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  for (int64_t row = 0; row < 100; ++row) {
    ASSERT_TRUE(table.Insert(row, vec).ok());
  }
  bufmgr.CheckInvariants();
  table.CheckInvariants();
}

TEST(CheckInvariantsSmoke, PaseIvfFlat) {
  const std::string dir = ::testing::TempDir() + "/check_smoke_pase";
  std::filesystem::remove_all(dir);
  auto smgr = std::make_unique<pgstub::StorageManager>(
      pgstub::StorageManager::Open(dir, 8192).ValueOrDie());
  pgstub::BufferManager bufmgr(smgr.get(), 1024);
  SyntheticOptions sopt;
  sopt.dim = 8;
  sopt.num_base = 500;
  sopt.num_queries = 1;
  auto ds = GenerateClustered(sopt);
  pase::PaseIvfFlatOptions opt;
  opt.num_clusters = 8;
  pase::PaseIvfFlatIndex index({smgr.get(), &bufmgr}, ds.dim, opt);
  index.CheckInvariants();  // pre-build: nothing to audit
  ASSERT_TRUE(index.Build(ds.base.data(), ds.num_base).ok());
  index.CheckInvariants();
  ASSERT_TRUE(index.Insert(ds.base.data()).ok());
  ASSERT_TRUE(index.Delete(3).ok());
  index.CheckInvariants();
  ASSERT_TRUE(index.Vacuum().ok());
  index.CheckInvariants();
}

TEST(CheckInvariantsSmoke, FaissLikeIvfFlatAndHnsw) {
  SyntheticOptions sopt;
  sopt.dim = 8;
  sopt.num_base = 500;
  sopt.num_queries = 1;
  auto ds = GenerateClustered(sopt);

  faisslike::IvfFlatOptions iopt;
  iopt.num_clusters = 8;
  faisslike::IvfFlatIndex ivf(ds.dim, iopt);
  ivf.CheckInvariants();  // pre-train: nothing to audit
  ASSERT_TRUE(ivf.Build(ds.base.data(), ds.num_base).ok());
  ASSERT_TRUE(ivf.Insert(ds.base.data()).ok());
  ivf.CheckInvariants();

  faisslike::HnswIndex hnsw(ds.dim, faisslike::HnswOptions{});
  hnsw.CheckInvariants();  // empty graph
  ASSERT_TRUE(hnsw.Build(ds.base.data(), 200).ok());
  ASSERT_TRUE(hnsw.Delete(5).ok());
  hnsw.CheckInvariants();
}

}  // namespace
}  // namespace vecdb
