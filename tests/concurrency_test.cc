// Inter-query concurrency: many threads issuing independent queries
// against one shared index must agree with serial results. (Intra-query
// parallelism is covered by the engine tests; HNSW search is documented as
// single-session because of its mutable visited table, matching the
// paper's setup where neither system parallelizes HNSW queries.)
#include <gtest/gtest.h>

#include <filesystem>

#include <atomic>
#include <memory>
#include <thread>

#include "datasets/synthetic.h"
#include "faisslike/ivf_flat.h"
#include "pase/ivf_flat.h"
#include "pgstub/bufmgr.h"

namespace vecdb {
namespace {

Dataset TestData() {
  SyntheticOptions opt;
  opt.dim = 16;
  opt.num_base = 2000;
  opt.num_queries = 32;
  return GenerateClustered(opt);
}

template <typename IndexT>
void RunConcurrentQueries(const IndexT& index, const Dataset& ds) {
  SearchParams params;
  params.k = 10;
  params.nprobe = 8;
  // Serial reference answers.
  std::vector<std::vector<Neighbor>> expected;
  for (size_t q = 0; q < ds.num_queries; ++q) {
    expected.push_back(index.Search(ds.query_vector(q), params).ValueOrDie());
  }
  // 8 threads x multiple passes over the query set.
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int pass = 0; pass < 5; ++pass) {
        const size_t q = (t * 7 + pass * 3) % ds.num_queries;
        auto result = index.Search(ds.query_vector(q), params);
        if (!result.ok()) {
          failures.fetch_add(1);
          continue;
        }
        if (*result != expected[q]) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  // Concurrent readers must leave the index structurally intact.
  index.CheckInvariants();
}

TEST(ConcurrencyTest, FaissIvfFlatSharedAcrossThreads) {
  auto ds = TestData();
  faisslike::IvfFlatOptions opt;
  opt.num_clusters = 16;
  faisslike::IvfFlatIndex index(ds.dim, opt);
  ASSERT_TRUE(index.Build(ds.base.data(), ds.num_base).ok());
  RunConcurrentQueries(index, ds);
}

TEST(ConcurrencyTest, PaseIvfFlatSharedAcrossThreads) {
  // Every concurrent query goes through the same buffer manager — its
  // mutex-guarded pin path must stay correct under contention.
  const std::string dir = ::testing::TempDir() + "/conc_pase";
  std::filesystem::remove_all(dir);
  auto smgr = std::make_unique<pgstub::StorageManager>(
      pgstub::StorageManager::Open(dir, 8192).ValueOrDie());
  pgstub::BufferManager bufmgr(smgr.get(), 4096);
  auto ds = TestData();
  pase::PaseIvfFlatOptions opt;
  opt.num_clusters = 16;
  pase::PaseIvfFlatIndex index({smgr.get(), &bufmgr}, ds.dim, opt);
  ASSERT_TRUE(index.Build(ds.base.data(), ds.num_base).ok());
  RunConcurrentQueries(index, ds);
}

TEST(ConcurrencyTest, PaseSurvivesEvictionUnderConcurrency) {
  // A pool smaller than the working set forces concurrent eviction.
  const std::string dir = ::testing::TempDir() + "/conc_evict";
  std::filesystem::remove_all(dir);
  auto smgr = std::make_unique<pgstub::StorageManager>(
      pgstub::StorageManager::Open(dir, 8192).ValueOrDie());
  pgstub::BufferManager bufmgr(smgr.get(), 24);
  auto ds = TestData();
  pase::PaseIvfFlatOptions opt;
  opt.num_clusters = 16;
  pase::PaseIvfFlatIndex index({smgr.get(), &bufmgr}, ds.dim, opt);
  ASSERT_TRUE(index.Build(ds.base.data(), ds.num_base).ok());
  RunConcurrentQueries(index, ds);
  EXPECT_GT(bufmgr.stats().evictions, 0u);
}

}  // namespace
}  // namespace vecdb
