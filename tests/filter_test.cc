// Filtered-search subsystem tests. The load-bearing check: every strategy
// (pre-filter, in-filter, post-filter, and the planner's auto choice) must
// return results identical to a brute-force filtered oracle, at every
// selectivity in {0.001, 0.01, 0.1, 0.5, 1.0}, on both engines and all
// three index families. The indexes run exhaustively (nprobe = clusters,
// efs = n) so approximation cannot hide a strategy bug; for IVF_PQ the
// oracle ranks by the engine's own ADC distances.
#include <gtest/gtest.h>

#include <filesystem>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "datasets/synthetic.h"
#include "faisslike/hnsw.h"
#include "faisslike/ivf_flat.h"
#include "faisslike/ivf_pq.h"
#include "filter/predicate.h"
#include "filter/selection.h"
#include "filter/strategy.h"
#include "pase/hnsw.h"
#include "pase/ivf_flat.h"
#include "pase/ivf_pq.h"
#include "sql/database.h"
#include "sql/session.h"

namespace vecdb {
namespace {

using filter::CmpOp;
using filter::FilterStrategy;
using filter::Predicate;
using filter::SelectionVector;

// ---------------------------------------------------------------------------
// SelectionVector

TEST(SelectionVectorTest, SetTestClearCount) {
  SelectionVector sel(130);  // spans three words
  EXPECT_EQ(sel.size(), 130u);
  EXPECT_EQ(sel.CountSet(), 0u);
  sel.Set(0);
  sel.Set(63);
  sel.Set(64);
  sel.Set(129);
  EXPECT_TRUE(sel.Test(0));
  EXPECT_TRUE(sel.Test(63));
  EXPECT_TRUE(sel.Test(64));
  EXPECT_TRUE(sel.Test(129));
  EXPECT_FALSE(sel.Test(1));
  EXPECT_EQ(sel.CountSet(), 4u);
  sel.Clear(63);
  EXPECT_FALSE(sel.Test(63));
  EXPECT_EQ(sel.CountSet(), 3u);
}

TEST(SelectionVectorTest, OutOfRangeIsNotSelected) {
  SelectionVector sel(10);
  sel.Set(10);   // ignored: outside the universe
  sel.Set(100);  // ignored
  EXPECT_FALSE(sel.Test(10));
  EXPECT_FALSE(sel.Test(100));
  EXPECT_EQ(sel.CountSet(), 0u);
  SelectionVector empty;
  EXPECT_FALSE(empty.Test(0));
  EXPECT_DOUBLE_EQ(empty.Selectivity(), 0.0);
}

TEST(SelectionVectorTest, SelectivityAndForEachSet) {
  SelectionVector sel(100);
  std::vector<size_t> want;
  for (size_t i = 0; i < 100; i += 7) {
    sel.Set(i);
    want.push_back(i);
  }
  EXPECT_DOUBLE_EQ(sel.Selectivity(),
                   static_cast<double>(want.size()) / 100.0);
  std::vector<size_t> got;
  sel.ForEachSet([&](size_t pos) { got.push_back(pos); });
  EXPECT_EQ(got, want);
}

// ---------------------------------------------------------------------------
// Predicate / Bind / Eval

TEST(PredicateTest, CompareOps) {
  const std::vector<std::string> cols = {"id", "price"};
  struct Case {
    CmpOp op;
    int64_t value;
    int64_t row_price;
    bool want;
  };
  const Case cases[] = {
      {CmpOp::kEq, 5, 5, true},  {CmpOp::kEq, 5, 6, false},
      {CmpOp::kNe, 5, 6, true},  {CmpOp::kNe, 5, 5, false},
      {CmpOp::kLt, 5, 4, true},  {CmpOp::kLt, 5, 5, false},
      {CmpOp::kLe, 5, 5, true},  {CmpOp::kLe, 5, 6, false},
      {CmpOp::kGt, 5, 6, true},  {CmpOp::kGt, 5, 5, false},
      {CmpOp::kGe, 5, 5, true},  {CmpOp::kGe, 5, 4, false},
  };
  for (const auto& c : cases) {
    auto pred = Predicate::Compare("price", c.op, c.value);
    auto bound = filter::Bind(*pred, cols).ValueOrDie();
    const int64_t row[2] = {1, c.row_price};
    EXPECT_EQ(bound.Eval(row), c.want)
        << filter::CmpOpName(c.op) << " " << c.value << " vs "
        << c.row_price;
  }
}

TEST(PredicateTest, InAndOrTree) {
  const std::vector<std::string> cols = {"id", "price", "tag"};
  // (price < 50 AND tag IN (1, 3)) OR id = 7
  auto pred = Predicate::Or(
      Predicate::And(Predicate::Compare("price", CmpOp::kLt, 50),
                     Predicate::In("tag", {1, 3})),
      Predicate::Compare("id", CmpOp::kEq, 7));
  auto bound = filter::Bind(*pred, cols).ValueOrDie();
  const int64_t match_and[3] = {1, 40, 3};
  const int64_t match_or[3] = {7, 99, 0};
  const int64_t miss_tag[3] = {1, 40, 2};
  const int64_t miss_price[3] = {1, 60, 1};
  EXPECT_TRUE(bound.Eval(match_and));
  EXPECT_TRUE(bound.Eval(match_or));
  EXPECT_FALSE(bound.Eval(miss_tag));
  EXPECT_FALSE(bound.Eval(miss_price));
}

TEST(PredicateTest, BindRejectsUnknownColumn) {
  auto pred = Predicate::Compare("nope", CmpOp::kEq, 1);
  EXPECT_FALSE(filter::Bind(*pred, {"id", "price"}).ok());
}

TEST(PredicateTest, ToStringRendersTree) {
  auto pred = Predicate::And(Predicate::Compare("price", CmpOp::kLt, 50),
                             Predicate::In("tag", {1, 3}));
  EXPECT_EQ(filter::ToString(*pred), "(price < 50 AND tag IN (1, 3))");
}

TEST(PredicateTest, CloneIsDeep) {
  auto pred = Predicate::Or(Predicate::Compare("a", CmpOp::kGe, 2),
                            Predicate::Compare("b", CmpOp::kLt, 9));
  auto copy = pred->Clone();
  pred.reset();
  EXPECT_EQ(filter::ToString(*copy), "(a >= 2 OR b < 9)");
}

// ---------------------------------------------------------------------------
// Planner

TEST(PlannerTest, ChoosesByCrossoverThresholds) {
  const filter::PlannerConfig cfg;  // pre <= 0.05, in <= 0.50
  const size_t n = 100000;
  EXPECT_EQ(filter::ChooseStrategy(0.01, 10, n, cfg),
            FilterStrategy::kPreFilter);
  EXPECT_EQ(filter::ChooseStrategy(0.05, 10, n, cfg),
            FilterStrategy::kPreFilter);
  EXPECT_EQ(filter::ChooseStrategy(0.2, 10, n, cfg),
            FilterStrategy::kInFilter);
  EXPECT_EQ(filter::ChooseStrategy(0.50, 10, n, cfg),
            FilterStrategy::kInFilter);
  EXPECT_EQ(filter::ChooseStrategy(0.9, 10, n, cfg),
            FilterStrategy::kPostFilter);
  EXPECT_EQ(filter::ChooseStrategy(1.0, 10, n, cfg),
            FilterStrategy::kPostFilter);
}

TEST(PlannerTest, TinyMatchCountRoutesToPreFilter) {
  // est_matches <= k: brute-forcing the survivors is never worse than the
  // result set itself, regardless of selectivity thresholds.
  EXPECT_EQ(filter::ChooseStrategy(0.9, 10, 10, {}),
            FilterStrategy::kPreFilter);
}

TEST(PlannerTest, ParseStrategyRoundTrips) {
  for (FilterStrategy s :
       {FilterStrategy::kAuto, FilterStrategy::kPreFilter,
        FilterStrategy::kPostFilter, FilterStrategy::kInFilter}) {
    EXPECT_EQ(filter::ParseStrategy(filter::StrategyName(s)).ValueOrDie(),
              s);
  }
  EXPECT_FALSE(filter::ParseStrategy("bogus").ok());
}

// ---------------------------------------------------------------------------
// Strategy-vs-oracle identity on every engine/index/selectivity

constexpr size_t kN = 2000;
constexpr size_t kK = 10;
constexpr double kSelectivities[] = {0.001, 0.01, 0.1, 0.5, 1.0};

Dataset FilterData() {
  SyntheticOptions opt;
  opt.dim = 16;
  opt.num_base = kN;
  opt.num_queries = 2;
  return GenerateClustered(opt);
}

/// Selects positions [0, round(sel * n)): attribute value = position, the
/// predicate is `value < round(sel * n)`.
SelectionVector MakePrefixSelection(size_t n, double sel) {
  SelectionVector out(n);
  const size_t matches = static_cast<size_t>(std::lround(sel * n));
  for (size_t i = 0; i < matches; ++i) out.Set(i);
  return out;
}

/// The oracle: the engine's own exhaustive ranking (k = n), filtered down
/// to the selection in test code, truncated to k. Using the engine's
/// Search keeps the oracle in the same distance domain (exact L2 for
/// flat/HNSW, ADC for PQ), so identity checks are bit-exact.
std::vector<Neighbor> Oracle(const VectorIndex& index, const float* query,
                             const SelectionVector& selection,
                             const SearchParams& params) {
  SearchParams all = params;
  all.k = index.NumVectors();
  auto ranked = index.Search(query, all).ValueOrDie();
  std::vector<Neighbor> kept;
  for (const auto& nb : ranked) {
    if (selection.Test(static_cast<size_t>(nb.id))) kept.push_back(nb);
    if (kept.size() == params.k) break;
  }
  return kept;
}

/// Ties in distance (possible under PQ's quantized ADC) may legally order
/// differently across strategies; canonicalize by (distance, id) before
/// the exact comparison.
void SortCanonical(std::vector<Neighbor>* v) {
  std::sort(v->begin(), v->end(), [](const Neighbor& a, const Neighbor& b) {
    if (a.dist != b.dist) return a.dist < b.dist;
    return a.id < b.id;
  });
}

void ExpectIdentical(std::vector<Neighbor> got, std::vector<Neighbor> want,
                     const std::string& label) {
  SortCanonical(&got);
  SortCanonical(&want);
  ASSERT_EQ(got.size(), want.size()) << label;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id) << label << " at rank " << i;
    EXPECT_EQ(got[i].dist, want[i].dist)
        << label << " at rank " << i;
  }
}

/// Runs all three forced strategies plus the planner's auto choice against
/// the oracle at every selectivity.
void CheckAllStrategies(const VectorIndex& index, const Dataset& ds,
                        const SearchParams& params) {
  for (double sel : kSelectivities) {
    const SelectionVector selection = MakePrefixSelection(kN, sel);
    const size_t matches = selection.CountSet();
    for (size_t q = 0; q < ds.num_queries; ++q) {
      const float* query = ds.query_vector(q);
      const auto want = Oracle(index, query, selection, params);
      ASSERT_EQ(want.size(), std::min(kK, matches));
      for (FilterStrategy strategy :
           {FilterStrategy::kPreFilter, FilterStrategy::kInFilter,
            FilterStrategy::kPostFilter, FilterStrategy::kAuto}) {
        FilterRequest req;
        req.selection = &selection;
        req.strategy = strategy;
        auto got = index.FilteredSearch(query, req, params).ValueOrDie();
        const std::string label = index.Describe() + " sel=" +
                                  std::to_string(sel) + " strategy=" +
                                  filter::StrategyName(strategy);
        // The post-filter contract: exactly min(k, matching) results (the
        // doubling retry must run the shortfall down to the true count).
        ASSERT_EQ(got.size(), std::min(kK, matches)) << label;
        ExpectIdentical(std::move(got), want, label);
      }
    }
  }
}

TEST(FilterOracleTest, FaissIvfFlat) {
  auto ds = FilterData();
  faisslike::IvfFlatOptions opt;
  opt.num_clusters = 16;
  opt.sample_ratio = 1.0;
  faisslike::IvfFlatIndex index(ds.dim, opt);
  ASSERT_TRUE(index.Build(ds.base.data(), ds.num_base).ok());
  SearchParams params;
  params.k = kK;
  params.nprobe = 16;
  CheckAllStrategies(index, ds, params);
}

TEST(FilterOracleTest, FaissIvfPq) {
  auto ds = FilterData();
  faisslike::IvfPqOptions opt;
  opt.num_clusters = 16;
  opt.pq_m = 4;
  opt.pq_codes = 16;
  opt.sample_ratio = 1.0;
  faisslike::IvfPqIndex index(ds.dim, opt);
  ASSERT_TRUE(index.Build(ds.base.data(), ds.num_base).ok());
  SearchParams params;
  params.k = kK;
  params.nprobe = 16;
  CheckAllStrategies(index, ds, params);
}

TEST(FilterOracleTest, FaissHnsw) {
  auto ds = FilterData();
  faisslike::HnswOptions opt;
  opt.bnn = 16;
  opt.efb = 40;
  faisslike::HnswIndex index(ds.dim, opt);
  ASSERT_TRUE(index.Build(ds.base.data(), ds.num_base).ok());
  SearchParams params;
  params.k = kK;
  params.efs = static_cast<uint32_t>(kN);  // exhaustive beam
  CheckAllStrategies(index, ds, params);
}

class PaseFilterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const std::string dir =
        ::testing::TempDir() + "/filter_" +
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir);
    smgr_ = std::make_unique<pgstub::StorageManager>(
        pgstub::StorageManager::Open(dir, 8192).ValueOrDie());
    bufmgr_ = std::make_unique<pgstub::BufferManager>(smgr_.get(), 4096);
  }
  pase::PaseEnv Env() { return {smgr_.get(), bufmgr_.get()}; }

  std::unique_ptr<pgstub::StorageManager> smgr_;
  std::unique_ptr<pgstub::BufferManager> bufmgr_;
};

TEST_F(PaseFilterTest, PaseIvfFlat) {
  auto ds = FilterData();
  pase::PaseIvfFlatOptions opt;
  opt.num_clusters = 16;
  opt.sample_ratio = 1.0;
  pase::PaseIvfFlatIndex index(Env(), ds.dim, opt);
  ASSERT_TRUE(index.Build(ds.base.data(), ds.num_base).ok());
  SearchParams params;
  params.k = kK;
  params.nprobe = 16;
  CheckAllStrategies(index, ds, params);
}

TEST_F(PaseFilterTest, PaseIvfPq) {
  auto ds = FilterData();
  pase::PaseIvfPqOptions opt;
  opt.num_clusters = 16;
  opt.pq_m = 4;
  opt.pq_codes = 16;
  opt.sample_ratio = 1.0;
  pase::PaseIvfPqIndex index(Env(), ds.dim, opt);
  ASSERT_TRUE(index.Build(ds.base.data(), ds.num_base).ok());
  SearchParams params;
  params.k = kK;
  params.nprobe = 16;
  CheckAllStrategies(index, ds, params);
}

TEST_F(PaseFilterTest, PaseHnsw) {
  auto ds = FilterData();
  pase::PaseHnswOptions opt;
  opt.bnn = 16;
  opt.efb = 40;
  pase::PaseHnswIndex index(Env(), ds.dim, opt);
  ASSERT_TRUE(index.Build(ds.base.data(), ds.num_base).ok());
  SearchParams params;
  params.k = kK;
  params.efs = static_cast<uint32_t>(kN);
  CheckAllStrategies(index, ds, params);
}

// ---------------------------------------------------------------------------
// FilteredSearch contract details

TEST(FilteredSearchTest, RejectsMissingSelectionAndNullQuery) {
  auto ds = FilterData();
  faisslike::IvfFlatOptions opt;
  opt.num_clusters = 4;
  opt.sample_ratio = 1.0;
  faisslike::IvfFlatIndex index(ds.dim, opt);
  ASSERT_TRUE(index.Build(ds.base.data(), ds.num_base).ok());
  SearchParams params;
  params.k = 5;
  params.nprobe = 4;
  FilterRequest req;  // no selection
  EXPECT_FALSE(index.FilteredSearch(ds.query_vector(0), req, params).ok());
  SelectionVector sel(kN);
  sel.Set(1);
  req.selection = &sel;
  EXPECT_FALSE(index.FilteredSearch(nullptr, req, params).ok());
}

TEST(FilteredSearchTest, EmptySelectionReturnsNoRows) {
  auto ds = FilterData();
  faisslike::IvfFlatOptions opt;
  opt.num_clusters = 4;
  opt.sample_ratio = 1.0;
  faisslike::IvfFlatIndex index(ds.dim, opt);
  ASSERT_TRUE(index.Build(ds.base.data(), ds.num_base).ok());
  SearchParams params;
  params.k = 5;
  params.nprobe = 4;
  const SelectionVector sel(kN);  // nothing selected
  for (FilterStrategy strategy :
       {FilterStrategy::kPreFilter, FilterStrategy::kInFilter,
        FilterStrategy::kPostFilter, FilterStrategy::kAuto}) {
    FilterRequest req;
    req.selection = &sel;
    req.strategy = strategy;
    auto got =
        index.FilteredSearch(ds.query_vector(0), req, params).ValueOrDie();
    EXPECT_TRUE(got.empty()) << filter::StrategyName(strategy);
  }
}

TEST(FilteredSearchTest, TombstonedRowsNeverSurface) {
  auto ds = FilterData();
  faisslike::IvfFlatOptions opt;
  opt.num_clusters = 4;
  opt.sample_ratio = 1.0;
  faisslike::IvfFlatIndex index(ds.dim, opt);
  ASSERT_TRUE(index.Build(ds.base.data(), ds.num_base).ok());
  SelectionVector sel = MakePrefixSelection(kN, 0.1);  // rows 0..199
  for (int64_t id = 0; id < 50; ++id) {
    ASSERT_TRUE(index.Delete(id).ok());
  }
  SearchParams params;
  params.k = 200;
  params.nprobe = 4;
  for (FilterStrategy strategy :
       {FilterStrategy::kPreFilter, FilterStrategy::kInFilter,
        FilterStrategy::kPostFilter}) {
    FilterRequest req;
    req.selection = &sel;
    req.strategy = strategy;
    auto got =
        index.FilteredSearch(ds.query_vector(0), req, params).ValueOrDie();
    EXPECT_EQ(got.size(), 150u) << filter::StrategyName(strategy);
    for (const auto& nb : got) {
      EXPECT_GE(nb.id, 50) << filter::StrategyName(strategy);
      EXPECT_LT(nb.id, 200) << filter::StrategyName(strategy);
    }
  }
}

TEST(FilteredSearchTest, ConcurrentInFilterSharedBitmap) {
  // Many threads running in-filter searches against one shared selection
  // bitmap and one shared metrics registry; run under TSan by
  // ci/run_checks.sh. Every thread must see the single-threaded answer.
  auto ds = FilterData();
  faisslike::IvfFlatOptions opt;
  opt.num_clusters = 8;
  opt.sample_ratio = 1.0;
  faisslike::IvfFlatIndex index(ds.dim, opt);
  ASSERT_TRUE(index.Build(ds.base.data(), ds.num_base).ok());
  const SelectionVector sel = MakePrefixSelection(kN, 0.25);
  SearchParams params;
  params.k = kK;
  params.nprobe = 8;
  FilterRequest req;
  req.selection = &sel;
  req.strategy = FilterStrategy::kInFilter;
  std::vector<std::vector<Neighbor>> want;
  for (size_t q = 0; q < ds.num_queries; ++q) {
    want.push_back(
        index.FilteredSearch(ds.query_vector(q), req, params).ValueOrDie());
  }
  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < 10; ++round) {
        for (size_t q = 0; q < ds.num_queries; ++q) {
          auto got = index.FilteredSearch(ds.query_vector(q), req, params);
          if (!got.ok() || got->size() != want[q].size()) {
            ++mismatches;
            continue;
          }
          for (size_t i = 0; i < got->size(); ++i) {
            if ((*got)[i].id != want[q][i].id) ++mismatches;
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// ---------------------------------------------------------------------------
// SQL end-to-end

class SqlFilterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const std::string dir =
        ::testing::TempDir() + "/sqlfilter_" +
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir);
    db_ = sql::MiniDatabase::Open(dir).ValueOrDie();
    session_ = db_->CreateSession();
  }

  sql::QueryResult Must(const std::string& stmt) {
    auto result = session_->Execute(stmt);
    EXPECT_TRUE(result.ok()) << stmt << " -> "
                             << result.status().ToString();
    return result.ok() ? *result : sql::QueryResult{};
  }

  /// 200 rows: id = 1000+i, price = i, tag = i % 5; vectors on a ring.
  void LoadTable() {
    Must("CREATE TABLE items (id int, vec float[8], price int, tag int)");
    std::string insert = "INSERT INTO items VALUES ";
    for (int i = 0; i < 200; ++i) {
      if (i > 0) insert += ", ";
      insert += "(" + std::to_string(1000 + i) + ", '";
      for (int d = 0; d < 8; ++d) {
        if (d > 0) insert += ",";
        insert += std::to_string((i * 37 % 100) / 100.0 + d * 0.01);
      }
      insert += "', " + std::to_string(i) + ", " + std::to_string(i % 5) +
                ")";
    }
    Must(insert);
  }

  static std::vector<int64_t> Ids(const sql::QueryResult& r) {
    std::vector<int64_t> out;
    for (const auto& row : r.rows) out.push_back(row.id);
    return out;
  }

  static uint64_t TableValue(const std::string& table,
                             const std::string& name) {
    const size_t pos = table.find(name + " ");
    if (pos == std::string::npos) return ~uint64_t{0};
    const size_t eol = table.find('\n', pos);
    return std::stoull(
        table.substr(pos + name.size(), eol - pos - name.size()));
  }

  static constexpr const char* kQuery =
      "'0.37,0.38,0.39,0.4,0.41,0.42,0.43,0.44'";

  std::unique_ptr<sql::MiniDatabase> db_;
  std::shared_ptr<sql::Session> session_;
};

TEST_F(SqlFilterTest, SeqScanHonorsWhere) {
  LoadTable();
  auto result = Must(std::string("SELECT id FROM items WHERE price < 10 "
                                 "ORDER BY vec <-> ") +
                     kQuery + " LIMIT 20");
  // Only the 10 matching rows exist; all must have price < 10.
  ASSERT_EQ(result.rows.size(), 10u);
  for (int64_t id : Ids(result)) {
    EXPECT_GE(id, 1000);
    EXPECT_LT(id, 1010);
  }
}

TEST_F(SqlFilterTest, IndexScanMatchesSeqScanUnderEveryStrategy) {
  LoadTable();
  const std::string where =
      " WHERE price >= 20 AND tag IN (0, 2) ORDER BY vec <-> ";
  auto seq = Must("SELECT id FROM items" + where + kQuery + " LIMIT 5");
  ASSERT_EQ(seq.rows.size(), 5u);
  Must("CREATE INDEX items_idx ON items USING ivfflat (vec) WITH "
       "(clusters=8, sample_ratio=1)");
  for (const char* strategy : {"auto", "prefilter", "postfilter",
                               "infilter"}) {
    auto indexed = Must("SELECT id FROM items" + where + kQuery +
                        " OPTIONS (nprobe=8, filter_strategy=" + strategy +
                        ") LIMIT 5");
    EXPECT_EQ(Ids(indexed), Ids(seq)) << strategy;
  }
}

TEST_F(SqlFilterTest, ExplainReportsPredicateAndStrategy) {
  LoadTable();
  Must("CREATE INDEX items_idx ON items USING ivfflat (vec) WITH "
       "(clusters=8, sample_ratio=1)");
  auto plan = Must(std::string("EXPLAIN SELECT id FROM items WHERE "
                               "price < 100 ORDER BY vec <-> ") +
                   kQuery + " OPTIONS (nprobe=8) LIMIT 5");
  EXPECT_NE(plan.message.find("filter=price < 100"), std::string::npos)
      << plan.message;
  EXPECT_NE(plan.message.find("strategy="), std::string::npos)
      << plan.message;
  EXPECT_NE(plan.message.find("est_selectivity="), std::string::npos)
      << plan.message;
  // A forced strategy shows up verbatim.
  auto forced = Must(std::string("EXPLAIN SELECT id FROM items WHERE "
                                 "price < 100 ORDER BY vec <-> ") +
                     kQuery +
                     " OPTIONS (nprobe=8, filter_strategy=prefilter) "
                     "LIMIT 5");
  EXPECT_NE(forced.message.find("strategy=prefilter"), std::string::npos)
      << forced.message;
}

TEST_F(SqlFilterTest, ShowMetricsReportsFilterCounters) {
  LoadTable();
  Must("CREATE INDEX items_idx ON items USING ivfflat (vec) WITH "
       "(clusters=8, sample_ratio=1)");
  Must("SHOW METRICS RESET");
  const std::string base =
      std::string("SELECT id FROM items WHERE price < 100 ORDER BY vec "
                  "<-> ") +
      kQuery + " OPTIONS (nprobe=8, filter_strategy=";
  Must(base + "prefilter) LIMIT 5");
  Must(base + "postfilter) LIMIT 5");
  Must(base + "infilter) LIMIT 5");
  auto shown = Must("SHOW METRICS");
  EXPECT_EQ(TableValue(shown.message, "filter.prefilter_queries"), 1u);
  EXPECT_EQ(TableValue(shown.message, "filter.postfilter_queries"), 1u);
  EXPECT_EQ(TableValue(shown.message, "filter.infilter_queries"), 1u);
  EXPECT_GT(TableValue(shown.message, "filter.bitmap_probes"), 0u);
  EXPECT_NE(shown.message.find("filter.selectivity_bp"),
            std::string::npos);
}

TEST_F(SqlFilterTest, UnknownFilterStrategyIsAnError) {
  LoadTable();
  EXPECT_FALSE(session_->Execute(std::string("SELECT id FROM items WHERE "
                                        "price < 10 ORDER BY vec <-> ") +
                            kQuery +
                            " OPTIONS (filter_strategy=sideways) LIMIT 5")
                   .ok());
}

TEST_F(SqlFilterTest, WhereOnUnknownColumnIsAnError) {
  LoadTable();
  EXPECT_FALSE(session_->Execute(std::string("SELECT id FROM items WHERE "
                                        "nope = 1 ORDER BY vec <-> ") +
                            kQuery + " LIMIT 5")
                   .ok());
}

TEST_F(SqlFilterTest, InsertArityMustMatchAttrColumns) {
  Must("CREATE TABLE t (id int, vec float[2], price int)");
  EXPECT_FALSE(session_->Execute("INSERT INTO t VALUES (1, '0,0')").ok());
  EXPECT_FALSE(session_->Execute("INSERT INTO t VALUES (1, '0,0', 2, 3)").ok());
  Must("INSERT INTO t VALUES (1, '0,0', 2)");
}

TEST_F(SqlFilterTest, DeleteByPredicateTombstonesAllMatches) {
  LoadTable();
  auto del = Must("DELETE FROM items WHERE price >= 100");
  EXPECT_EQ(del.message, "DELETE 100");
  auto rest = Must(std::string("SELECT id FROM items ORDER BY vec <-> ") +
                   kQuery + " LIMIT 200");
  EXPECT_EQ(rest.rows.size(), 100u);
  for (int64_t id : Ids(rest)) EXPECT_LT(id, 1100);
  // Deleting the same range again matches nothing: DELETE 0, not an error.
  EXPECT_EQ(Must("DELETE FROM items WHERE price >= 100").message,
            "DELETE 0");
}

TEST_F(SqlFilterTest, DeleteByIdFastPathKeepsHistoricalErrors) {
  LoadTable();
  EXPECT_EQ(Must("DELETE FROM items WHERE id = 1005").message, "DELETE 1");
  EXPECT_TRUE(session_->Execute("DELETE FROM items WHERE id = 1005")
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(session_->Execute("DELETE FROM items WHERE id = 99999")
                  .status()
                  .IsNotFound());
}

TEST_F(SqlFilterTest, FilteredSelectSkipsDeletedRows) {
  LoadTable();
  Must("CREATE INDEX items_idx ON items USING ivfflat (vec) WITH "
       "(clusters=8, sample_ratio=1)");
  Must("DELETE FROM items WHERE tag = 0");  // 40 of the 200 rows
  auto result = Must(std::string("SELECT id FROM items WHERE price < 50 "
                                 "ORDER BY vec <-> ") +
                     kQuery + " OPTIONS (nprobe=8) LIMIT 50");
  EXPECT_EQ(result.rows.size(), 40u);  // 50 matches minus 10 with tag 0
  for (int64_t id : Ids(result)) {
    EXPECT_NE((id - 1000) % 5, 0) << id;
  }
}

}  // namespace
}  // namespace vecdb
