#include "pgstub/page.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

namespace vecdb::pgstub {
namespace {

constexpr uint32_t kPageSize = 8192;

class PageTest : public ::testing::Test {
 protected:
  PageTest() : buf_(kPageSize), page_(buf_.data(), kPageSize) {
    page_.Init(0);
  }
  std::vector<char> buf_;
  PageView page_;
};

TEST_F(PageTest, FreshPageIsEmptyAndValid) {
  EXPECT_EQ(page_.ItemCount(), 0);
  EXPECT_TRUE(page_.Check().ok());
  EXPECT_GT(page_.FreeSpace(), kPageSize - 64);
}

TEST_F(PageTest, AddAndGetItems) {
  const std::string a = "hello";
  const std::string b = "world!";
  const OffsetNumber sa = page_.AddItem(a.data(), a.size());
  const OffsetNumber sb = page_.AddItem(b.data(), b.size());
  EXPECT_EQ(sa, 1);
  EXPECT_EQ(sb, 2);
  EXPECT_EQ(page_.ItemCount(), 2);
  EXPECT_EQ(std::string(page_.GetItem(sa), page_.GetItemLength(sa)), a);
  EXPECT_EQ(std::string(page_.GetItem(sb), page_.GetItemLength(sb)), b);
  EXPECT_TRUE(page_.Check().ok());
}

TEST_F(PageTest, InvalidSlotsReturnNull) {
  page_.AddItem("x", 1);
  EXPECT_EQ(page_.GetItem(0), nullptr);   // offsets are 1-based
  EXPECT_EQ(page_.GetItem(2), nullptr);   // past the end
  EXPECT_EQ(page_.GetItemLength(0), 0);
  EXPECT_EQ(page_.GetItemLength(99), 0);
}

TEST_F(PageTest, FillsUntilExactlyFull) {
  std::vector<char> item(100, 'x');
  int added = 0;
  while (page_.AddItem(item.data(), item.size()) != kInvalidOffset) {
    ++added;
  }
  // 100-byte items + 4-byte line pointers into ~8184 usable bytes.
  EXPECT_GE(added, 70);
  EXPECT_LE(added, 82);
  EXPECT_LT(page_.FreeSpace(), 104u);
  EXPECT_TRUE(page_.Check().ok());
  // Every stored item is still intact.
  for (OffsetNumber s = 1; s <= page_.ItemCount(); ++s) {
    EXPECT_EQ(page_.GetItemLength(s), 100);
    EXPECT_EQ(page_.GetItem(s)[0], 'x');
  }
}

TEST_F(PageTest, SpecialSpaceReservedAndWritable) {
  std::vector<char> buf(kPageSize);
  PageView page(buf.data(), kPageSize);
  page.Init(16);
  EXPECT_EQ(page.SpecialSize(), 16);
  std::memset(page.Special(), 0xAB, 16);
  // Fill the page; items must never clobber the special space.
  std::vector<char> item(500, 'y');
  while (page.AddItem(item.data(), item.size()) != kInvalidOffset) {
  }
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(static_cast<unsigned char>(page.Special()[i]), 0xAB);
  }
  EXPECT_TRUE(page.Check().ok());
}

TEST_F(PageTest, CheckDetectsCorruptHeader) {
  page_.AddItem("abc", 3);
  // Stomp the header's lower bound.
  auto* header = reinterpret_cast<PageView::Header*>(buf_.data());
  header->lower = 2;
  EXPECT_TRUE(page_.Check().IsCorruption());
}

TEST_F(PageTest, CheckDetectsBadLinePointer) {
  page_.AddItem("abc", 3);
  auto* iid = reinterpret_cast<ItemId*>(buf_.data() + sizeof(PageView::Header));
  iid->off = kPageSize - 1;  // points past the item area
  iid->len = 8;
  EXPECT_TRUE(page_.Check().IsCorruption());
}

TEST_F(PageTest, SmallPageSizeWorks) {
  std::vector<char> buf(1024);
  PageView page(buf.data(), 1024);
  page.Init(8);
  const OffsetNumber s = page.AddItem("tiny", 4);
  EXPECT_NE(s, kInvalidOffset);
  EXPECT_EQ(std::string(page.GetItem(s), 4), "tiny");
}

TEST_F(PageTest, OversizedItemRejected) {
  // Larger than page minus header and line pointer: cannot fit.
  std::vector<char> item(kPageSize, 'z');
  EXPECT_EQ(page_.AddItem(item.data(), static_cast<uint16_t>(kPageSize - 8)),
            kInvalidOffset);
  EXPECT_EQ(page_.ItemCount(), 0);
  // Item starts are MAXALIGNed, so the largest accepted item leaves the
  // 8-byte header, one 4-byte line pointer, and the alignment padding.
  EXPECT_EQ(page_.AddItem(item.data(), static_cast<uint16_t>(kPageSize - 12)),
            kInvalidOffset);
  EXPECT_NE(page_.AddItem(item.data(), static_cast<uint16_t>(kPageSize - 16)),
            kInvalidOffset);
  EXPECT_TRUE(page_.Check().ok());
}

TEST(TupleIdTest, ValidityAndEquality) {
  TupleId invalid;
  EXPECT_FALSE(invalid.valid());
  TupleId a{3, 7}, b{3, 7}, c{3, 8};
  EXPECT_TRUE(a.valid());
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

}  // namespace
}  // namespace vecdb::pgstub
