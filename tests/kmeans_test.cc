#include "clustering/kmeans.h"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "common/random.h"
#include "datasets/synthetic.h"
#include "distance/kernels.h"

namespace vecdb {
namespace {

Dataset SmallClustered(uint32_t dim, size_t n, uint64_t seed = 42) {
  SyntheticOptions opt;
  opt.dim = dim;
  opt.num_base = n;
  opt.num_queries = 1;
  opt.num_natural_clusters = 8;
  opt.seed = seed;
  return GenerateClustered(opt);
}

TEST(KMeansTest, RejectsDegenerateInputs) {
  std::vector<float> data(10 * 4, 0.f);
  KMeansOptions opt;
  opt.num_clusters = 0;
  EXPECT_FALSE(TrainKMeans(data.data(), 10, 4, opt).ok());
  opt.num_clusters = 11;
  EXPECT_FALSE(TrainKMeans(data.data(), 10, 4, opt).ok());
  opt.num_clusters = 2;
  EXPECT_FALSE(TrainKMeans(nullptr, 10, 4, opt).ok());
  EXPECT_FALSE(TrainKMeans(data.data(), 0, 4, opt).ok());
  opt.sample_ratio = 0.0;
  EXPECT_FALSE(TrainKMeans(data.data(), 10, 4, opt).ok());
}

TEST(KMeansTest, ProducesRequestedCodebook) {
  auto ds = SmallClustered(16, 500);
  KMeansOptions opt;
  opt.num_clusters = 10;
  opt.sample_ratio = 1.0;
  auto model = TrainKMeans(ds.base.data(), ds.num_base, ds.dim, opt);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->num_clusters, 10u);
  EXPECT_EQ(model->dim, 16u);
  EXPECT_EQ(model->centroids.size(), 160u);
  EXPECT_GT(model->iterations, 0);
}

TEST(KMeansTest, InertiaBeatsSingleRandomCentroidBaseline) {
  auto ds = SmallClustered(8, 600);
  KMeansOptions opt;
  opt.num_clusters = 8;
  opt.sample_ratio = 1.0;
  auto model =
      TrainKMeans(ds.base.data(), ds.num_base, ds.dim, opt).ValueOrDie();

  // Baseline: all points assigned to the global mean.
  std::vector<double> mean(ds.dim, 0.0);
  for (size_t i = 0; i < ds.num_base; ++i) {
    for (uint32_t t = 0; t < ds.dim; ++t) mean[t] += ds.base[i * ds.dim + t];
  }
  std::vector<float> meanf(ds.dim);
  for (uint32_t t = 0; t < ds.dim; ++t) {
    meanf[t] = static_cast<float>(mean[t] / ds.num_base);
  }
  double baseline = 0;
  for (size_t i = 0; i < ds.num_base; ++i) {
    baseline += L2Sqr(ds.base.data() + i * ds.dim, meanf.data(), ds.dim);
  }
  EXPECT_LT(model.inertia, baseline);
}

TEST(KMeansTest, InertiaMonotoneInIterations) {
  auto ds = SmallClustered(8, 400);
  double prev = std::numeric_limits<double>::infinity();
  for (int iters : {1, 3, 10}) {
    KMeansOptions opt;
    opt.num_clusters = 6;
    opt.sample_ratio = 1.0;
    opt.max_iterations = iters;
    auto model =
        TrainKMeans(ds.base.data(), ds.num_base, ds.dim, opt).ValueOrDie();
    EXPECT_LE(model.inertia, prev * 1.0001);
    prev = model.inertia;
  }
}

TEST(KMeansTest, StylesProduceDifferentCentroids) {
  // RC#5: the two implementations must genuinely differ.
  auto ds = SmallClustered(16, 500);
  KMeansOptions faiss_opt, pase_opt;
  faiss_opt.num_clusters = pase_opt.num_clusters = 8;
  faiss_opt.sample_ratio = pase_opt.sample_ratio = 1.0;
  faiss_opt.style = KMeansStyle::kFaissStyle;
  pase_opt.style = KMeansStyle::kPaseStyle;
  auto a = TrainKMeans(ds.base.data(), ds.num_base, ds.dim, faiss_opt)
               .ValueOrDie();
  auto b =
      TrainKMeans(ds.base.data(), ds.num_base, ds.dim, pase_opt).ValueOrDie();
  float diff = 0;
  for (size_t i = 0; i < a.centroids.size(); ++i) {
    diff += std::abs(a.centroids[i] - b.centroids[i]);
  }
  EXPECT_GT(diff, 1e-3f);
}

TEST(KMeansTest, DeterministicForFixedSeed) {
  auto ds = SmallClustered(8, 300);
  KMeansOptions opt;
  opt.num_clusters = 5;
  opt.sample_ratio = 0.5;
  auto a = TrainKMeans(ds.base.data(), ds.num_base, ds.dim, opt).ValueOrDie();
  auto b = TrainKMeans(ds.base.data(), ds.num_base, ds.dim, opt).ValueOrDie();
  for (size_t i = 0; i < a.centroids.size(); ++i) {
    EXPECT_FLOAT_EQ(a.centroids[i], b.centroids[i]);
  }
}

TEST(AssignTest, SgemmAndNaivePathsAgree) {
  auto ds = SmallClustered(32, 300, 7);
  KMeansOptions opt;
  opt.num_clusters = 12;
  opt.sample_ratio = 1.0;
  auto model =
      TrainKMeans(ds.base.data(), ds.num_base, ds.dim, opt).ValueOrDie();
  std::vector<uint32_t> a(ds.num_base), b(ds.num_base);
  std::vector<float> da(ds.num_base), db(ds.num_base);
  AssignToNearest(ds.base.data(), ds.num_base, ds.dim,
                  model.centroids.data(), 12, true, a.data(), da.data());
  AssignToNearest(ds.base.data(), ds.num_base, ds.dim,
                  model.centroids.data(), 12, false, b.data(), db.data());
  size_t mismatches = 0;
  for (size_t i = 0; i < ds.num_base; ++i) {
    if (a[i] != b[i]) ++mismatches;  // float round-off ties are possible
    EXPECT_NEAR(da[i], db[i], 1e-2f * (db[i] + 1.f));
  }
  EXPECT_LE(mismatches, ds.num_base / 100);
}

TEST(AssignTest, AssignmentIsActuallyNearest) {
  auto ds = SmallClustered(8, 200, 9);
  KMeansOptions opt;
  opt.num_clusters = 6;
  opt.sample_ratio = 1.0;
  auto model =
      TrainKMeans(ds.base.data(), ds.num_base, ds.dim, opt).ValueOrDie();
  std::vector<uint32_t> assign(ds.num_base);
  AssignToNearest(ds.base.data(), ds.num_base, ds.dim,
                  model.centroids.data(), 6, false, assign.data(), nullptr);
  for (size_t i = 0; i < ds.num_base; ++i) {
    const float chosen = L2Sqr(ds.base.data() + i * ds.dim,
                               model.centroid(assign[i]), ds.dim);
    for (uint32_t c = 0; c < 6; ++c) {
      EXPECT_LE(chosen, L2Sqr(ds.base.data() + i * ds.dim, model.centroid(c),
                              ds.dim) +
                            1e-4f);
    }
  }
}

TEST(AssignTest, ParallelAssignmentMatchesSerial) {
  auto ds = SmallClustered(16, 500, 11);
  KMeansOptions opt;
  opt.num_clusters = 10;
  opt.sample_ratio = 1.0;
  auto model =
      TrainKMeans(ds.base.data(), ds.num_base, ds.dim, opt).ValueOrDie();
  std::vector<uint32_t> serial(ds.num_base), parallel(ds.num_base);
  AssignToNearest(ds.base.data(), ds.num_base, ds.dim,
                  model.centroids.data(), 10, false, serial.data(), nullptr);
  ThreadPool pool(4);
  AssignToNearest(ds.base.data(), ds.num_base, ds.dim,
                  model.centroids.data(), 10, false, parallel.data(), nullptr,
                  &pool);
  EXPECT_EQ(serial, parallel);
}

}  // namespace
}  // namespace vecdb
