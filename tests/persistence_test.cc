#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/serialize.h"
#include "datasets/ground_truth.h"
#include "datasets/synthetic.h"
#include "faisslike/hnsw.h"
#include "faisslike/ivf_flat.h"
#include "faisslike/ivf_pq.h"

namespace vecdb::faisslike {
namespace {

Dataset TestData() {
  SyntheticOptions opt;
  opt.dim = 32;
  opt.num_base = 1200;
  opt.num_queries = 8;
  return GenerateClustered(opt);
}

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

template <typename IndexT>
void ExpectSameResults(const IndexT& a, const IndexT& b, const Dataset& ds,
                       const SearchParams& params) {
  for (size_t q = 0; q < ds.num_queries; ++q) {
    auto ra = a.Search(ds.query_vector(q), params).ValueOrDie();
    auto rb = b.Search(ds.query_vector(q), params).ValueOrDie();
    EXPECT_EQ(ra, rb) << "query " << q;
  }
}

TEST(SerializeTest, PrimitivesRoundTrip) {
  const std::string path = TempPath("prims.bin");
  {
    auto writer = std::move(BinaryWriter::Open(path, 0xABCD, 1)).ValueOrDie();
    ASSERT_TRUE(writer.Write<int32_t>(-7).ok());
    ASSERT_TRUE(writer.Write<double>(3.25).ok());
    ASSERT_TRUE(writer.WriteString("hello").ok());
    std::vector<uint16_t> vec = {1, 2, 3};
    ASSERT_TRUE(writer.WriteVector(vec).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  auto reader = std::move(BinaryReader::Open(path, 0xABCD, 1)).ValueOrDie();
  int32_t i;
  double d;
  std::string s;
  std::vector<uint16_t> v;
  ASSERT_TRUE(reader.Read(&i).ok());
  ASSERT_TRUE(reader.Read(&d).ok());
  ASSERT_TRUE(reader.ReadString(&s).ok());
  ASSERT_TRUE(reader.ReadVector(&v).ok());
  EXPECT_EQ(i, -7);
  EXPECT_DOUBLE_EQ(d, 3.25);
  EXPECT_EQ(s, "hello");
  EXPECT_EQ(v, (std::vector<uint16_t>{1, 2, 3}));
  std::remove(path.c_str());
}

TEST(SerializeTest, MagicAndVersionChecked) {
  const std::string path = TempPath("magic.bin");
  {
    auto writer = std::move(BinaryWriter::Open(path, 0x1111, 2)).ValueOrDie();
    ASSERT_TRUE(writer.Close().ok());
  }
  EXPECT_TRUE(BinaryReader::Open(path, 0x2222, 2).status().IsCorruption());
  EXPECT_TRUE(BinaryReader::Open(path, 0x1111, 3).status().IsNotSupported());
  EXPECT_TRUE(BinaryReader::Open(path, 0x1111, 2).ok());
  std::remove(path.c_str());
}

TEST(SerializeTest, TruncationIsCorruption) {
  const std::string path = TempPath("trunc.bin");
  {
    auto writer = std::move(BinaryWriter::Open(path, 0x3333, 1)).ValueOrDie();
    ASSERT_TRUE(writer.Write<uint64_t>(1000).ok());  // promises an array
    ASSERT_TRUE(writer.Close().ok());
  }
  auto reader = std::move(BinaryReader::Open(path, 0x3333, 1)).ValueOrDie();
  std::vector<uint64_t> vec;
  EXPECT_TRUE(reader.ReadVector(&vec).IsCorruption());
  std::remove(path.c_str());
}

TEST(SerializeTest, VersionRangeOpen) {
  const std::string path = TempPath("range.bin");
  {
    auto writer = std::move(BinaryWriter::Open(path, 0x4444, 1)).ValueOrDie();
    ASSERT_TRUE(writer.Close().ok());
  }
  // A v1 file opens under a [1, 2] reader, which reports what it found.
  uint32_t found = 0;
  ASSERT_TRUE(BinaryReader::Open(path, 0x4444, 1, 2, &found).ok());
  EXPECT_EQ(found, 1u);
  // Outside the range in either direction is NotSupported.
  EXPECT_TRUE(
      BinaryReader::Open(path, 0x4444, 2, 3, &found).status().IsNotSupported());
  {
    auto writer = std::move(BinaryWriter::Open(path, 0x4444, 9)).ValueOrDie();
    ASSERT_TRUE(writer.Close().ok());
  }
  EXPECT_TRUE(
      BinaryReader::Open(path, 0x4444, 1, 2, &found).status().IsNotSupported());
  std::remove(path.c_str());
}

TEST(PersistenceTest, IvfFlatRoundTrip) {
  auto ds = TestData();
  IvfFlatOptions opt;
  opt.num_clusters = 16;
  IvfFlatIndex index(ds.dim, opt);
  ASSERT_TRUE(index.Build(ds.base.data(), ds.num_base).ok());
  const std::string path = TempPath("ivfflat.idx");
  ASSERT_TRUE(index.Save(path).ok());
  auto loaded = std::move(IvfFlatIndex::Load(path)).ValueOrDie();
  EXPECT_EQ(loaded.NumVectors(), index.NumVectors());
  EXPECT_EQ(loaded.num_clusters(), index.num_clusters());
  SearchParams params;
  params.k = 10;
  params.nprobe = 8;
  ExpectSameResults(index, loaded, ds, params);
  std::remove(path.c_str());
}

TEST(PersistenceTest, IvfPqRoundTrip) {
  auto ds = TestData();
  IvfPqOptions opt;
  opt.num_clusters = 16;
  opt.pq_m = 8;
  opt.pq_codes = 32;
  opt.sample_ratio = 0.5;
  IvfPqIndex index(ds.dim, opt);
  ASSERT_TRUE(index.Build(ds.base.data(), ds.num_base).ok());
  const std::string path = TempPath("ivfpq.idx");
  ASSERT_TRUE(index.Save(path).ok());
  auto loaded = std::move(IvfPqIndex::Load(path)).ValueOrDie();
  EXPECT_EQ(loaded.NumVectors(), index.NumVectors());
  ASSERT_NE(loaded.pq(), nullptr);
  EXPECT_EQ(loaded.pq()->num_subvectors(), 8u);
  SearchParams params;
  params.k = 10;
  params.nprobe = 8;
  ExpectSameResults(index, loaded, ds, params);
  std::remove(path.c_str());
}

TEST(PersistenceTest, IvfFlatOptionsSurviveReload) {
  auto ds = TestData();
  IvfFlatOptions opt;
  opt.num_clusters = 16;
  opt.sample_ratio = 0.5;
  opt.train_iterations = 7;
  opt.use_sgemm = false;
  opt.seed = 99;
  opt.num_threads = 2;
  IvfFlatIndex index(ds.dim, opt);
  ASSERT_TRUE(index.Build(ds.base.data(), ds.num_base).ok());
  const std::string path = TempPath("ivfflat_opts.idx");
  ASSERT_TRUE(index.Save(path).ok());
  auto loaded = std::move(IvfFlatIndex::Load(path)).ValueOrDie();
  // v2 carries the full build-options block, so a reloaded index rebuilds
  // and re-inserts exactly like the original (v1 kept only use_sgemm).
  EXPECT_EQ(loaded.options().num_clusters, 16u);
  EXPECT_DOUBLE_EQ(loaded.options().sample_ratio, 0.5);
  EXPECT_EQ(loaded.options().train_iterations, 7);
  EXPECT_FALSE(loaded.options().use_sgemm);
  EXPECT_EQ(loaded.options().seed, 99u);
  EXPECT_EQ(loaded.options().num_threads, 2);
  std::remove(path.c_str());
}

TEST(PersistenceTest, IvfFlatV1FileStillLoads) {
  // Hand-written v1 payload: geometry + use_sgemm, no options block. The
  // loader must accept it and fall back to default options.
  const std::string path = TempPath("ivfflat_v1.idx");
  {
    constexpr uint32_t kIvfFlatMagic = 0x56495646;
    auto writer =
        std::move(BinaryWriter::Open(path, kIvfFlatMagic, 1)).ValueOrDie();
    const uint32_t dim = 4, clusters = 1;
    ASSERT_TRUE(writer.Write(dim).ok());
    ASSERT_TRUE(writer.Write(clusters).ok());
    ASSERT_TRUE(writer.Write<uint64_t>(2).ok());  // num_vectors
    ASSERT_TRUE(writer.Write(true).ok());         // use_sgemm
    AlignedFloats centroids;
    centroids.Resize(dim);
    for (size_t i = 0; i < dim; ++i) centroids.data()[i] = 0.5f;
    ASSERT_TRUE(writer.WriteFloats(centroids).ok());
    AlignedFloats bucket;
    bucket.Resize(2 * dim);
    for (size_t i = 0; i < 2 * dim; ++i) {
      bucket.data()[i] = static_cast<float>(i);
    }
    ASSERT_TRUE(writer.WriteFloats(bucket).ok());
    std::vector<int64_t> ids = {0, 1};
    ASSERT_TRUE(writer.WriteVector(ids).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  auto loaded = std::move(IvfFlatIndex::Load(path)).ValueOrDie();
  EXPECT_EQ(loaded.NumVectors(), 2u);
  EXPECT_EQ(loaded.Dim(), 4u);
  SearchParams params;
  params.k = 2;
  params.nprobe = 1;
  const float query[4] = {0.f, 1.f, 2.f, 3.f};
  auto results = loaded.Search(query, params).ValueOrDie();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].id, 0);
  std::remove(path.c_str());
}

TEST(PersistenceTest, IvfPqRefineSidecarRoundTrip) {
  auto ds = TestData();
  IvfPqOptions opt;
  opt.num_clusters = 16;
  opt.pq_m = 8;
  opt.pq_codes = 32;
  opt.sample_ratio = 0.5;
  opt.refine_factor = 3;
  IvfPqIndex index(ds.dim, opt);
  ASSERT_TRUE(index.Build(ds.base.data(), ds.num_base).ok());
  const std::string path = TempPath("ivfpq_refine.idx");
  ASSERT_TRUE(index.Save(path).ok());
  auto loaded = std::move(IvfPqIndex::Load(path)).ValueOrDie();
  EXPECT_EQ(loaded.options().refine_factor, 3u);
  // Identical results prove the raw-vector sidecar (which v1 dropped) was
  // restored: the refine path rescores with exact distances, so any loss
  // of refine_vectors_ would change the ranking.
  SearchParams params;
  params.k = 10;
  params.nprobe = 8;
  ExpectSameResults(index, loaded, ds, params);
  std::remove(path.c_str());
}

TEST(PersistenceTest, HnswRoundTrip) {
  auto ds = TestData();
  HnswOptions opt;
  opt.bnn = 8;
  opt.efb = 20;
  opt.seed = 77;
  HnswIndex index(ds.dim, opt);
  ASSERT_TRUE(index.Build(ds.base.data(), ds.num_base).ok());
  const std::string path = TempPath("hnsw.idx");
  ASSERT_TRUE(index.Save(path).ok());
  auto loaded = std::move(HnswIndex::Load(path)).ValueOrDie();
  EXPECT_EQ(loaded.NumVectors(), index.NumVectors());
  EXPECT_EQ(loaded.max_level(), index.max_level());
  EXPECT_EQ(loaded.options().seed, 77u);  // v2 build-options block
  SearchParams params;
  params.k = 10;
  params.efs = 50;
  ExpectSameResults(index, loaded, ds, params);
  std::remove(path.c_str());
}

TEST(PersistenceTest, UnbuiltIndexRefusesToSave) {
  IvfFlatOptions opt;
  IvfFlatIndex index(8, opt);
  EXPECT_FALSE(index.Save(TempPath("never.idx")).ok());
}

TEST(PersistenceTest, WrongIndexTypeRejected) {
  auto ds = TestData();
  IvfFlatOptions opt;
  opt.num_clusters = 8;
  IvfFlatIndex index(ds.dim, opt);
  ASSERT_TRUE(index.Build(ds.base.data(), ds.num_base).ok());
  const std::string path = TempPath("crossload.idx");
  ASSERT_TRUE(index.Save(path).ok());
  // An IVF_FLAT file is not an HNSW file.
  EXPECT_TRUE(HnswIndex::Load(path).status().IsCorruption());
  std::remove(path.c_str());
}

TEST(PersistenceTest, MissingFileIsIOError) {
  EXPECT_TRUE(IvfFlatIndex::Load("/nonexistent/x.idx").status().IsIOError());
}

}  // namespace
}  // namespace vecdb::faisslike
