#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace vecdb {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, MinimumOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  std::atomic<int> counter{0};
  pool.Submit([&] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](int, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, [&](int, size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelForWorkerIdsAreValid) {
  ThreadPool pool(4);
  std::atomic<bool> valid{true};
  pool.ParallelFor(64, [&](int worker, size_t, size_t) {
    if (worker < 0 || worker >= 4) valid = false;
  });
  EXPECT_TRUE(valid.load());
}

TEST(ThreadPoolTest, ParallelForSmallNUsesFewChunks) {
  ThreadPool pool(8);
  std::atomic<int> chunks{0};
  pool.ParallelFor(3, [&](int, size_t begin, size_t end) {
    EXPECT_LE(end - begin, 1u);
    chunks.fetch_add(1);
  });
  EXPECT_EQ(chunks.load(), 3);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&] { counter.fetch_add(1); });
  pool.Wait();
  pool.Submit([&] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

}  // namespace
}  // namespace vecdb
