#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

namespace vecdb {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, MinimumOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  std::atomic<int> counter{0};
  pool.Submit([&] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](int, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, [&](int, size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelForWorkerIdsAreValid) {
  ThreadPool pool(4);
  std::atomic<bool> valid{true};
  pool.ParallelFor(64, [&](int worker, size_t, size_t) {
    if (worker < 0 || worker >= 4) valid = false;
  });
  EXPECT_TRUE(valid.load());
}

TEST(ThreadPoolTest, ParallelForSmallNUsesFewChunks) {
  ThreadPool pool(8);
  std::atomic<int> chunks{0};
  pool.ParallelFor(3, [&](int, size_t begin, size_t end) {
    EXPECT_LE(end - begin, 1u);
    chunks.fetch_add(1);
  });
  EXPECT_EQ(chunks.load(), 3);
}

TEST(ThreadPoolTest, CheckInvariantsOnLivePool) {
  ThreadPool pool(4);
  pool.CheckInvariants();
  std::atomic<int> counter{0};
  for (int i = 0; i < 32; ++i) pool.Submit([&] { counter.fetch_add(1); });
  pool.Wait();
  pool.CheckInvariants();
  EXPECT_EQ(counter.load(), 32);
}

// Regression: Submit used to silently enqueue into the dead queue when the
// pool was already shutting down — the task would never run. It must abort.
TEST(ThreadPoolDeathTest, SubmitDuringShutdownAborts) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(
      {
        auto* pool = new ThreadPool(1);
        std::atomic<bool> dying{false};
        pool->Submit([&] {
          while (!dying.load()) std::this_thread::yield();
          // Give ~ThreadPool ample time to flag shutdown (it only needs to
          // take the pool mutex), then submit into the dying pool.
          std::this_thread::sleep_for(std::chrono::milliseconds(300));
          pool->Submit([] {});
        });
        std::thread destroyer([&] {
          dying.store(true);
          delete pool;  // blocks joining the worker, which hits the CHECK
        });
        destroyer.join();
      },
      "Submit after shutdown");
}

// Pinned by the Thread Safety Analysis audit of the Submit-vs-Shutdown
// window: the destructor sets shutdown_ and wakes the workers, but a
// worker must keep draining the queue and only exit once it is empty —
// tasks submitted before destruction began can never be dropped.
TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  std::atomic<bool> release{false};
  {
    ThreadPool pool(1);
    // Occupy the single worker so the next submissions queue up...
    pool.Submit([&] {
      while (!release.load()) std::this_thread::yield();
      ran.fetch_add(1);
    });
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&] { ran.fetch_add(1); });
    }
    release.store(true);
    // ...and destroy the pool with (up to) 50 tasks still queued.
  }
  EXPECT_EQ(ran.load(), 51);
}

// Pinned by the same audit: Submit and Wait from different threads share
// mu_/done_cv_; Wait must not return while submissions it can observe are
// still in flight, and the handoff must be race-free under TSan.
TEST(ThreadPoolTest, ConcurrentSubmitAndWait) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&] {
      for (int i = 0; i < 250; ++i) {
        pool.Submit([&] { ran.fetch_add(1); });
      }
    });
  }
  for (auto& t : submitters) t.join();
  pool.Wait();
  EXPECT_EQ(ran.load(), 1000);
  pool.CheckInvariants();
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&] { counter.fetch_add(1); });
  pool.Wait();
  pool.Submit([&] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

}  // namespace
}  // namespace vecdb
