// Session front-end tests: the epoch reclamation primitive, session
// lifecycle and per-session state, admission control (global and
// per-session caps, provably pinned via the statement hook), result-value
// independence, and multi-session stress with a snapshot-visibility
// oracle. ci/run_checks.sh also runs the stress suite under TSan and the
// whole binary under ASan/UBSan.
#include "sql/session.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "obs/metrics.h"
#include "pgstub/epoch.h"
#include "sql/database.h"

namespace vecdb::sql {
namespace {

// ---------------------------------------------------------------------------
// EpochManager: the reclamation primitive under the snapshot protocol.

TEST(EpochManagerTest, RetireDefersUntilLastReaderExits) {
  pgstub::EpochManager epochs;
  const uint64_t pinned = epochs.Enter();
  bool freed = false;
  epochs.Retire([&] { freed = true; });
  EXPECT_EQ(epochs.ReclaimReady(), 0u);  // reader still pinned
  EXPECT_FALSE(freed);
  epochs.Exit(pinned);
  EXPECT_EQ(epochs.ReclaimReady(), 1u);
  EXPECT_TRUE(freed);
}

TEST(EpochManagerTest, ReaderEnteringAfterRetireDoesNotBlockIt) {
  pgstub::EpochManager epochs;
  bool freed = false;
  epochs.Retire([&] { freed = true; });
  // This reader pinned an epoch AFTER the retirement, so it can only see
  // the replacement object: the retired one may be reclaimed under it.
  pgstub::EpochGuard guard(&epochs);
  EXPECT_EQ(epochs.ReclaimReady(), 1u);
  EXPECT_TRUE(freed);
}

TEST(EpochManagerTest, AccountingAndReclaimAll) {
  pgstub::EpochManager epochs;
  int freed = 0;
  {
    pgstub::EpochGuard guard(&epochs);
    EXPECT_EQ(epochs.active_readers(), 1u);
    epochs.Retire([&] { ++freed; });
    epochs.Retire([&] { ++freed; });
    EXPECT_EQ(epochs.retired_pending(), 2u);
  }
  EXPECT_EQ(epochs.active_readers(), 0u);
  EXPECT_EQ(epochs.ReclaimAll(), 2u);
  EXPECT_EQ(freed, 2);
  EXPECT_EQ(epochs.retired_pending(), 0u);
}

// ---------------------------------------------------------------------------
// Shared fixture plumbing.

std::string TestDir(const char* suffix) {
  std::string dir = ::testing::TempDir() + "/session_" +
                    ::testing::UnitTest::GetInstance()
                        ->current_test_info()
                        ->name() +
                    "_" + suffix;
  std::filesystem::remove_all(dir);
  return dir;
}

DatabaseOptions SmallPool() {
  DatabaseOptions options;
  options.pool_pages = 256;
  return options;
}

std::string Vec4(int seed) {
  return std::to_string(seed % 7) + "," + std::to_string((seed / 7) % 7) +
         "," + std::to_string((seed / 49) % 7) + "," + std::to_string(seed);
}

/// Multi-row INSERT for ids [first, first + count).
std::string InsertBatch(int64_t first, int count) {
  std::string sql = "INSERT INTO t VALUES ";
  for (int i = 0; i < count; ++i) {
    if (i > 0) sql += ", ";
    sql += "(" + std::to_string(first + i) + ", '" +
           Vec4(static_cast<int>(first + i)) + "')";
  }
  return sql;
}

/// Parks every statement admitted while armed, so tests can pin the
/// admission state (parked statements hold their slots; queued ones sit
/// in Admit). Wired into DatabaseOptions::statement_hook_for_test.
class StatementGate {
 public:
  void Arm() {
    MutexLock lock(mu_);
    armed_ = true;
    open_ = false;
  }

  /// Lets every parked (and future) statement through.
  void Open() {
    MutexLock lock(mu_);
    open_ = true;
    cv_.notify_all();
  }

  size_t parked() const {
    MutexLock lock(mu_);
    return parked_;
  }

  void Hook(uint64_t /*session_id*/) {
    MutexLock lock(mu_);
    if (!armed_ || open_) return;
    ++parked_;
    while (!open_) lock.Wait(cv_);
  }

 private:
  mutable Mutex mu_;
  std::condition_variable cv_;
  bool armed_ VECDB_GUARDED_BY(mu_) = false;
  bool open_ VECDB_GUARDED_BY(mu_) = false;
  size_t parked_ VECDB_GUARDED_BY(mu_) = 0;
};

/// Polls `cond` until it holds or ~5s pass; returns whether it held.
bool WaitFor(const std::function<bool()>& cond) {
  for (int i = 0; i < 5000; ++i) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return cond();
}

// ---------------------------------------------------------------------------
// Session lifecycle and per-session state.

TEST(SessionApiTest, CreateEnumerateCloseAndIdsNeverReused) {
  auto db = MiniDatabase::Open(TestDir("data"), SmallPool()).ValueOrDie();
  auto a = db->CreateSession();
  auto b = db->CreateSession();
  EXPECT_LT(a->id(), b->id());
  EXPECT_EQ(db->session_manager()->alive(), 2u);

  const uint64_t b_id = b->id();
  b.reset();  // dropping the handle retires the session
  EXPECT_EQ(db->session_manager()->alive(), 1u);
  auto c = db->CreateSession();
  EXPECT_GT(c->id(), b_id);  // ids are never reused

  auto snapshot = db->session_manager()->Snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0]->id(), a->id());  // ascending by id
  EXPECT_EQ(snapshot[1]->id(), c->id());

  a->Close();
  EXPECT_TRUE(a->closed());
  a->Close();  // idempotent
  auto closed = a->Execute("SHOW METRICS");
  EXPECT_TRUE(closed.status().IsInvalidArgument());
  EXPECT_TRUE(c->Execute("SHOW METRICS").ok());  // others unaffected
}

TEST(SessionApiTest, ExecuteUpdatesStatementStats) {
  auto db = MiniDatabase::Open(TestDir("data"), SmallPool()).ValueOrDie();
  auto session = db->CreateSession();
  ASSERT_TRUE(
      session->Execute("CREATE TABLE t (id int, vec float[4])").ok());
  ASSERT_TRUE(session->Execute(InsertBatch(0, 8)).ok());
  auto result = session->Execute(
      "SELECT id FROM t ORDER BY vec <#> '1,1,1,1' LIMIT 3");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(session->statements_executed(), 3u);
  const QueryResult::ExecStats stats = session->last_stats();
  EXPECT_EQ(stats.rows_returned, 3u);
  EXPECT_EQ(stats.rows_scanned, 8u);
  EXPECT_GT(stats.wall_seconds, 0.0);
  // A failed statement counts as executed but leaves last_stats alone.
  EXPECT_FALSE(session->Execute("SELECT id FROM ghost ORDER BY vec <#> "
                                "'1,1,1,1' LIMIT 1")
                   .ok());
  EXPECT_EQ(session->statements_executed(), 4u);
  EXPECT_EQ(session->last_stats().rows_returned, 3u);
}

TEST(SessionApiTest, DefaultOptionsMergeUnderExplicitOptions) {
  auto db = MiniDatabase::Open(TestDir("data"), SmallPool()).ValueOrDie();
  auto session = db->CreateSession();
  ASSERT_TRUE(
      session->Execute("CREATE TABLE t (id int, vec float[4])").ok());
  for (int b = 0; b < 4; ++b) {
    ASSERT_TRUE(session->Execute(InsertBatch(b * 16, 16)).ok());
  }
  ASSERT_TRUE(session->Execute("CREATE INDEX t_idx ON t USING ivfflat "
                               "(vec) WITH (clusters=4, sample_ratio=1)")
                  .ok());
  const std::string prefix = "SELECT id FROM t ORDER BY vec <-> '1,1,1,1' ";
  const std::string plain = prefix + "LIMIT 2";
  const std::string all_probes = prefix + "OPTIONS (nprobe=4) LIMIT 2";

  // Probing all clusters visits every tuple; the session default nprobe=1
  // must shrink that, and an explicit OPTIONS must win over the default.
  ASSERT_TRUE(session->Execute(all_probes).ok());
  const uint64_t all_clusters = session->last_stats().rows_scanned;
  EXPECT_EQ(all_clusters, 64u);

  session->SetDefaultOption("nprobe", 1);
  ASSERT_TRUE(session->Execute(plain).ok());
  EXPECT_LT(session->last_stats().rows_scanned, all_clusters);
  ASSERT_TRUE(session->Execute(all_probes).ok());
  EXPECT_EQ(session->last_stats().rows_scanned, all_clusters);

  session->ClearDefaultOption("nprobe");
  ASSERT_TRUE(session->Execute(plain).ok());  // default 20, clamped to 4
  EXPECT_EQ(session->last_stats().rows_scanned, all_clusters);
}

TEST(SessionApiTest, MetricsSinkRoutesIndexScanCounters) {
  auto db = MiniDatabase::Open(TestDir("data"), SmallPool()).ValueOrDie();
  auto session = db->CreateSession();
  ASSERT_TRUE(
      session->Execute("CREATE TABLE t (id int, vec float[4])").ok());
  ASSERT_TRUE(session->Execute(InsertBatch(0, 32)).ok());
  ASSERT_TRUE(session->Execute("CREATE INDEX t_idx ON t USING ivfflat "
                               "(vec) WITH (clusters=2, sample_ratio=1)")
                  .ok());
  obs::MetricsRegistry sink;
  sink.SetEnabled(true);
  session->SetMetricsSink(&sink);
  ASSERT_TRUE(session->Execute("SELECT id FROM t ORDER BY vec <-> "
                               "'1,1,1,1' OPTIONS (nprobe=2) LIMIT 2")
                  .ok());
  const uint64_t visited = sink.Value(obs::Counter::kPaseTuplesVisited) +
                           sink.Value(obs::Counter::kFaissTuplesVisited) +
                           sink.Value(obs::Counter::kBridgeTuplesVisited);
  EXPECT_EQ(visited, 32u);
  // rows_scanned was computed from the sink's counters, not the global's.
  EXPECT_EQ(session->last_stats().rows_scanned, visited);
  session->SetMetricsSink(nullptr);
}

TEST(SessionApiTest, ResultsAreIndependentValues) {
  auto db = MiniDatabase::Open(TestDir("data"), SmallPool()).ValueOrDie();
  auto a = db->CreateSession();
  auto b = db->CreateSession();
  ASSERT_TRUE(a->Execute("CREATE TABLE t (id int, vec float[4])").ok());
  ASSERT_TRUE(a->Execute(InsertBatch(0, 10)).ok());
  auto result =
      a->Execute("SELECT id FROM t ORDER BY vec <#> '1,1,1,1' LIMIT 100");
  ASSERT_TRUE(result.ok());
  const std::vector<QueryResult::Row> rows = result->rows;
  const QueryResult::ExecStats stats = a->last_stats();

  // Later statements on this and other sessions must not disturb the
  // returned value or a copied stats snapshot.
  ASSERT_TRUE(b->Execute("DELETE FROM t WHERE id = 3").ok());
  ASSERT_TRUE(b->Execute(InsertBatch(100, 10)).ok());
  ASSERT_TRUE(
      a->Execute("SELECT id FROM t ORDER BY vec <#> '1,1,1,1' LIMIT 1")
          .ok());
  ASSERT_EQ(result->rows.size(), rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(result->rows[i].id, rows[i].id);
  }
  EXPECT_EQ(stats.rows_returned, 10u);
}

TEST(SessionApiTest, ShowSessionsListsStateAndAdmission) {
  auto db = MiniDatabase::Open(TestDir("data"), SmallPool()).ValueOrDie();
  auto a = db->CreateSession();
  auto b = db->CreateSession();
  b->Close();
  auto shown = a->Execute("SHOW SESSIONS");
  ASSERT_TRUE(shown.ok());
  const std::string& out = shown->message;
  EXPECT_NE(out.find("session"), std::string::npos);
  EXPECT_NE(out.find("open"), std::string::npos);    // a (executing this)
  EXPECT_NE(out.find("closed"), std::string::npos);  // b
  EXPECT_NE(out.find("admission: running=1"), std::string::npos);
  EXPECT_NE(out.find("max_concurrent=8"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Admission control.

TEST(AdmissionTest, OpenValidatesCaps) {
  DatabaseOptions options = SmallPool();
  options.max_concurrent_queries = 0;
  EXPECT_TRUE(MiniDatabase::Open(TestDir("a"), options)
                  .status()
                  .IsInvalidArgument());
  options.max_concurrent_queries = 1;
  options.max_inflight_per_session = 0;
  EXPECT_TRUE(MiniDatabase::Open(TestDir("b"), options)
                  .status()
                  .IsInvalidArgument());
}

TEST(AdmissionTest, ConcurrentStatementsPinnedAtCap) {
  StatementGate gate;
  DatabaseOptions options = SmallPool();
  options.max_concurrent_queries = 3;
  options.statement_hook_for_test = [&gate](uint64_t id) { gate.Hook(id); };
  auto db = MiniDatabase::Open(TestDir("data"), options).ValueOrDie();
  auto setup = db->CreateSession();
  ASSERT_TRUE(setup->Execute("CREATE TABLE t (id int, vec float[4])").ok());
  ASSERT_TRUE(setup->Execute(InsertBatch(0, 4)).ok());

  constexpr int kSessions = 8;
  std::vector<std::shared_ptr<Session>> sessions;
  for (int i = 0; i < kSessions; ++i) {
    sessions.push_back(db->CreateSession());
  }
  gate.Arm();
  std::atomic<int> ok_count{0};
  std::vector<std::thread> threads;
  threads.reserve(kSessions);
  for (int i = 0; i < kSessions; ++i) {
    threads.emplace_back([&, i] {
      auto result = sessions[i]->Execute(
          "SELECT id FROM t ORDER BY vec <#> '1,1,1,1' LIMIT 4");
      if (result.ok()) ok_count.fetch_add(1);
    });
  }
  // The admission state must settle at exactly cap running, rest queued —
  // and while anything is queued, running never exceeds the cap.
  AdmissionController* admission = db->admission();
  ASSERT_TRUE(WaitFor([&] {
    EXPECT_LE(admission->running(), 3u);
    return admission->running() == 3 && admission->queued() == kSessions - 3;
  })) << "running=" << admission->running()
      << " queued=" << admission->queued();
  EXPECT_EQ(gate.parked(), 3u);  // only admitted statements reached the hook

  gate.Open();
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok_count.load(), kSessions);
  EXPECT_EQ(admission->running(), 0u);
  EXPECT_EQ(admission->queued(), 0u);
  uint64_t queued_total = 0;
  for (const auto& s : sessions) queued_total += s->statements_queued();
  EXPECT_EQ(queued_total, static_cast<uint64_t>(kSessions - 3));
}

TEST(AdmissionTest, PerSessionCapDoesNotHeadOfLineBlock) {
  StatementGate gate;
  DatabaseOptions options = SmallPool();
  options.max_concurrent_queries = 4;
  options.max_inflight_per_session = 1;
  options.statement_hook_for_test = [&gate](uint64_t id) { gate.Hook(id); };
  auto db = MiniDatabase::Open(TestDir("data"), options).ValueOrDie();
  auto setup = db->CreateSession();
  ASSERT_TRUE(setup->Execute("CREATE TABLE t (id int, vec float[4])").ok());
  ASSERT_TRUE(setup->Execute(InsertBatch(0, 4)).ok());
  const std::string query =
      "SELECT id FROM t ORDER BY vec <#> '1,1,1,1' LIMIT 4";

  auto chatty = db->CreateSession();
  auto other = db->CreateSession();
  gate.Arm();
  std::thread first([&] { ASSERT_TRUE(chatty->Execute(query).ok()); });
  ASSERT_TRUE(WaitFor([&] { return db->admission()->running() == 1; }));
  // The chatty session is now at its cap: its second statement must queue
  // even though three global slots are free...
  std::thread second([&] { ASSERT_TRUE(chatty->Execute(query).ok()); });
  ASSERT_TRUE(WaitFor([&] { return db->admission()->queued() == 1; }));
  // ...and must NOT block a different session behind it in the queue.
  std::thread third([&] { ASSERT_TRUE(other->Execute(query).ok()); });
  ASSERT_TRUE(WaitFor([&] { return db->admission()->running() == 2; }));
  EXPECT_EQ(db->admission()->queued(), 1u);
  EXPECT_EQ(chatty->inflight(), 1u);
  EXPECT_EQ(other->inflight(), 1u);

  gate.Open();
  first.join();
  second.join();
  third.join();
  EXPECT_EQ(chatty->statements_executed(), 2u);
  EXPECT_GE(chatty->statements_queued(), 1u);
  EXPECT_EQ(other->statements_queued(), 0u);
}

// ---------------------------------------------------------------------------
// Multi-session stress. Run under TSan via ci/run_checks.sh.

TEST(SessionStressTest, SnapshotReaderNeverSeesTornInsert) {
  constexpr int kBatch = 10;
  constexpr int kBatches = 40;
  constexpr int kReaders = 3;
  auto db = MiniDatabase::Open(TestDir("data"), SmallPool()).ValueOrDie();
  auto writer = db->CreateSession();
  ASSERT_TRUE(writer->Execute("CREATE TABLE t (id int, vec float[4])").ok());

  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&db, &done] {
      auto session = db->CreateSession();
      size_t last_seen = 0;
      while (!done.load(std::memory_order_acquire)) {
        auto result = session->Execute(
            "SELECT id FROM t ORDER BY vec <#> '1,1,1,1' LIMIT 100000");
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        // INSERT publishes per statement: a lock-free seq scan may see any
        // batch prefix but never a torn batch, and rows never regress.
        EXPECT_EQ(result->rows.size() % kBatch, 0u);
        EXPECT_GE(result->rows.size(), last_seen);
        last_seen = result->rows.size();
      }
    });
  }
  for (int b = 0; b < kBatches; ++b) {
    ASSERT_TRUE(writer->Execute(InsertBatch(b * kBatch, kBatch)).ok());
  }
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  auto final_rows = writer->Execute(
      "SELECT id FROM t ORDER BY vec <#> '1,1,1,1' LIMIT 100000");
  ASSERT_TRUE(final_rows.ok());
  EXPECT_EQ(final_rows->rows.size(),
            static_cast<size_t>(kBatch * kBatches));
}

TEST(SessionStressTest, MixedWorkloadEightSessionsStaysConsistent) {
  constexpr int kSeed = 100;     // pre-loaded rows (ids 0..99)
  constexpr int kPerWriter = 80; // rows each writer adds
  auto db = MiniDatabase::Open(TestDir("data"), SmallPool()).ValueOrDie();
  auto setup = db->CreateSession();
  ASSERT_TRUE(setup->Execute("CREATE TABLE t (id int, vec float[4])").ok());
  for (int b = 0; b < kSeed / 10; ++b) {
    ASSERT_TRUE(setup->Execute(InsertBatch(b * 10, 10)).ok());
  }
  ASSERT_TRUE(setup->Execute("CREATE INDEX t_idx ON t USING ivfflat (vec) "
                             "WITH (clusters=4, sample_ratio=1, "
                             "engine='faiss')")
                  .ok());

  // 8 sessions: 2 writers (disjoint id ranges), 2 deleters (disjoint
  // halves of the seed rows), 4 readers (index scans + seq scans).
  std::vector<std::thread> threads;
  std::atomic<bool> done{false};
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([&db, w] {
      auto session = db->CreateSession();
      const int64_t base = 1000 + w * kPerWriter;
      for (int i = 0; i < kPerWriter / 10; ++i) {
        ASSERT_TRUE(session->Execute(InsertBatch(base + i * 10, 10)).ok());
      }
    });
  }
  for (int d = 0; d < 2; ++d) {
    threads.emplace_back([&db, d] {
      auto session = db->CreateSession();
      // Each deleter owns half the seed ids, so every DELETE hits a row
      // that exists and no two sessions race for the same id.
      for (int i = 0; i < kSeed / 2; ++i) {
        const int64_t id = d * (kSeed / 2) + i;
        auto result =
            session->Execute("DELETE FROM t WHERE id = " + std::to_string(id));
        ASSERT_TRUE(result.ok()) << result.status().ToString();
      }
    });
  }
  for (int r = 0; r < 4; ++r) {
    threads.emplace_back([&db, &done, r] {
      auto session = db->CreateSession();
      const std::string query =
          r % 2 == 0
              ? "SELECT id FROM t ORDER BY vec <-> '1,1,1,1' "
                "OPTIONS (nprobe=4) LIMIT 10"
              : "SELECT id FROM t ORDER BY vec <#> '1,1,1,1' LIMIT 100000";
      while (!done.load(std::memory_order_acquire)) {
        auto result = session->Execute(query);
        ASSERT_TRUE(result.ok()) << result.status().ToString();
      }
    });
  }
  for (size_t i = 0; i < 4; ++i) threads[i].join();  // writers + deleters
  done.store(true, std::memory_order_release);
  for (size_t i = 4; i < threads.size(); ++i) threads[i].join();

  // Oracle: everything the writers added survives; every seed row is gone.
  ASSERT_TRUE(setup->Execute("DROP INDEX t_idx").ok());
  auto rows = setup->Execute(
      "SELECT id FROM t ORDER BY vec <#> '1,1,1,1' LIMIT 100000");
  ASSERT_TRUE(rows.ok());
  std::set<int64_t> ids;
  for (const auto& row : rows->rows) ids.insert(row.id);
  EXPECT_EQ(ids.size(), static_cast<size_t>(2 * kPerWriter));
  for (int w = 0; w < 2; ++w) {
    for (int i = 0; i < kPerWriter; ++i) {
      EXPECT_TRUE(ids.count(1000 + w * kPerWriter + i))
          << "lost row " << 1000 + w * kPerWriter + i;
    }
  }
  // Session metrics moved through the workload.
  auto& metrics = obs::MetricsRegistry::Global();
  EXPECT_GE(metrics.Value(obs::Counter::kSessionCreated), 9u);
  EXPECT_GE(metrics.Value(obs::Counter::kSessionAdmitted), 40u);
}

}  // namespace
}  // namespace vecdb::sql
