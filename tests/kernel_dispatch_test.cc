// Dispatch-layer tests: tier resolution (including the VECDB_KERNEL_ISA
// override rule), cross-ISA numerical parity on randomized dimensions
// (odd tails, d < one SIMD lane), and the SQ8 fast-scan oracle — batched
// results bit-identical to one-at-a-time calls within a tier.
#include "distance/dispatch.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <vector>

#include "common/random.h"
#include "distance/kernels.h"
#include "quantizer/sq8.h"

namespace vecdb {
namespace {

std::vector<float> RandomVec(size_t d, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> out(d);
  for (auto& v : out) v = rng.Gaussian();
  return out;
}

/// Every compiled-in tier the host can run. Always contains scalar.
std::vector<const KernelDispatch*> SupportedTables() {
  std::vector<const KernelDispatch*> out;
  for (KernelIsa isa :
       {KernelIsa::kScalar, KernelIsa::kAvx2, KernelIsa::kAvx512}) {
    if (const KernelDispatch* t = KernelTableFor(isa)) out.push_back(t);
  }
  return out;
}

// Accumulation-order differences between tiers grow with d and magnitude;
// scale the tolerance with both.
float ParityTol(float ref, size_t d) {
  return 1e-5f * static_cast<float>(d) * std::max(1.f, std::fabs(ref));
}

// Dimensions chosen to exercise every tail shape: below one AVX2 lane,
// below one AVX-512 lane, odd remainders, exact lane multiples.
const size_t kDims[] = {1, 2, 3, 5, 7, 8, 9, 15, 16, 17,
                        24, 31, 33, 63, 100, 128, 257};

TEST(KernelDispatchTest, IsaNamesAreCanonical) {
  EXPECT_STREQ(KernelIsaName(KernelIsa::kScalar), "scalar");
  EXPECT_STREQ(KernelIsaName(KernelIsa::kAvx2), "avx2");
  EXPECT_STREQ(KernelIsaName(KernelIsa::kAvx512), "avx512");
}

TEST(KernelDispatchTest, ScalarAlwaysSupported) {
  EXPECT_TRUE(KernelIsaSupported(KernelIsa::kScalar));
  ASSERT_NE(KernelTableFor(KernelIsa::kScalar), nullptr);
  EXPECT_EQ(KernelTableFor(KernelIsa::kScalar)->isa, KernelIsa::kScalar);
}

TEST(KernelDispatchTest, TablesReportTheirOwnTier) {
  for (const KernelDispatch* t : SupportedTables()) {
    EXPECT_EQ(KernelTableFor(t->isa), t);
    EXPECT_TRUE(KernelIsaSupported(t->isa));
  }
}

TEST(KernelDispatchTest, ActiveTableMatchesResolutionRule) {
  // Reconstruct the host's best tier from the public support predicate and
  // check the active table obeys the documented resolution rule for
  // whatever VECDB_KERNEL_ISA this process was (or wasn't) started with.
  // This is what makes the forced-scalar CI stage a real assertion.
  KernelIsa best = KernelIsa::kScalar;
  for (KernelIsa isa : {KernelIsa::kAvx2, KernelIsa::kAvx512}) {
    if (KernelIsaSupported(isa)) best = isa;
  }
  const KernelIsa expected =
      ResolveKernelIsa(std::getenv("VECDB_KERNEL_ISA"), best, nullptr);
  EXPECT_EQ(ActiveKernelIsa(), expected);
  EXPECT_EQ(ActiveKernels().isa, expected);
}

TEST(KernelDispatchTest, ResolveHonorsSupportedDowngrade) {
  std::string note;
  EXPECT_EQ(ResolveKernelIsa("scalar", KernelIsa::kAvx512, &note),
            KernelIsa::kScalar);
  EXPECT_TRUE(note.empty());
  EXPECT_EQ(ResolveKernelIsa("avx2", KernelIsa::kAvx512, &note),
            KernelIsa::kAvx2);
  EXPECT_TRUE(note.empty());
  EXPECT_EQ(ResolveKernelIsa("avx512", KernelIsa::kAvx512, &note),
            KernelIsa::kAvx512);
  EXPECT_TRUE(note.empty());
}

TEST(KernelDispatchTest, ResolveClampsUnsupportedRequest) {
  std::string note;
  EXPECT_EQ(ResolveKernelIsa("avx512", KernelIsa::kAvx2, &note),
            KernelIsa::kAvx2);
  EXPECT_FALSE(note.empty());
  note.clear();
  EXPECT_EQ(ResolveKernelIsa("avx2", KernelIsa::kScalar, &note),
            KernelIsa::kScalar);
  EXPECT_FALSE(note.empty());
}

TEST(KernelDispatchTest, ResolveKeepsBestOnUnknownOrEmpty) {
  std::string note;
  EXPECT_EQ(ResolveKernelIsa(nullptr, KernelIsa::kAvx2, &note),
            KernelIsa::kAvx2);
  EXPECT_TRUE(note.empty());
  EXPECT_EQ(ResolveKernelIsa("", KernelIsa::kAvx512, &note),
            KernelIsa::kAvx512);
  EXPECT_TRUE(note.empty());
  EXPECT_EQ(ResolveKernelIsa("sse9", KernelIsa::kAvx2, &note),
            KernelIsa::kAvx2);
  EXPECT_FALSE(note.empty());
}

TEST(KernelDispatchTest, FloatKernelParityAcrossTiers) {
  const KernelDispatch* scalar = KernelTableFor(KernelIsa::kScalar);
  uint64_t seed = 100;
  for (size_t d : kDims) {
    const auto a = RandomVec(d, ++seed);
    const auto b = RandomVec(d, ++seed);
    const float ref_l2 = scalar->l2sqr(a.data(), b.data(), d);
    const float ref_ip = scalar->inner_product(a.data(), b.data(), d);
    const float ref_norm = scalar->l2norm_sqr(a.data(), d);
    const float ref_cos = scalar->cosine(a.data(), b.data(), d);
    for (const KernelDispatch* t : SupportedTables()) {
      SCOPED_TRACE(std::string("isa=") + KernelIsaName(t->isa) +
                   " d=" + std::to_string(d));
      EXPECT_NEAR(t->l2sqr(a.data(), b.data(), d), ref_l2,
                  ParityTol(ref_l2, d));
      EXPECT_NEAR(t->inner_product(a.data(), b.data(), d), ref_ip,
                  ParityTol(ref_ip, d));
      EXPECT_NEAR(t->l2norm_sqr(a.data(), d), ref_norm,
                  ParityTol(ref_norm, d));
      // Cosine is a ratio of reductions; its error does not scale with
      // magnitude, only with d.
      EXPECT_NEAR(t->cosine(a.data(), b.data(), d), ref_cos,
                  1e-6f * static_cast<float>(d) + 1e-6f);
    }
  }
}

TEST(KernelDispatchTest, CosineZeroVectorConvention) {
  const std::vector<float> zero(16, 0.f);
  const auto b = RandomVec(16, 7);
  for (const KernelDispatch* t : SupportedTables()) {
    SCOPED_TRACE(KernelIsaName(t->isa));
    EXPECT_EQ(t->cosine(zero.data(), b.data(), 16), 1.f);
    EXPECT_EQ(t->cosine(b.data(), zero.data(), 16), 1.f);
    EXPECT_EQ(t->cosine(zero.data(), zero.data(), 16), 1.f);
  }
}

TEST(KernelDispatchTest, PublicKernelsAgreeWithActiveTable) {
  const KernelDispatch& active = ActiveKernels();
  const auto a = RandomVec(128, 41);
  const auto b = RandomVec(128, 42);
  EXPECT_EQ(L2Sqr(a.data(), b.data(), 128),
            active.l2sqr(a.data(), b.data(), 128));
  EXPECT_EQ(InnerProduct(a.data(), b.data(), 128),
            active.inner_product(a.data(), b.data(), 128));
  EXPECT_EQ(L2NormSqr(a.data(), 128), active.l2norm_sqr(a.data(), 128));
  EXPECT_EQ(CosineDistance(a.data(), b.data(), 128),
            active.cosine(a.data(), b.data(), 128));
}

TEST(KernelDispatchTest, DistanceBatchBitIdenticalToSingleCalls) {
  const size_t d = 33, n = 57;
  const auto query = RandomVec(d, 50);
  const auto base = RandomVec(d * n, 51);
  std::vector<float> batch(n);
  for (Metric m : {Metric::kL2, Metric::kInnerProduct, Metric::kCosine}) {
    DistanceBatch(m, query.data(), base.data(), n, d, batch.data());
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(batch[i], Distance(m, query.data(), base.data() + i * d, d));
    }
  }
}

// --- SQ8 fast-scan oracle ------------------------------------------------

struct Sq8Fixture {
  size_t d;
  size_t n;
  std::vector<float> qadj;
  std::vector<float> scale;
  std::vector<uint8_t> codes;

  Sq8Fixture(size_t d_in, size_t n_in, uint64_t seed) : d(d_in), n(n_in) {
    Rng rng(seed);
    qadj.resize(d);
    scale.resize(d);
    codes.resize(n * d);
    for (auto& v : qadj) v = rng.Gaussian();
    for (auto& v : scale) v = rng.UniformFloat() * 0.05f;
    for (auto& c : codes) {
      c = static_cast<uint8_t>(rng.Uniform(256));
    }
  }
};

TEST(KernelDispatchTest, Sq8BatchBitIdenticalToPerCodeCalls) {
  // The oracle the engines rely on: vector lanes block along the dimension
  // only, so scanning n codes in one call gives exactly the same floats as
  // n one-code calls — per tier, verified for every tail shape.
  uint64_t seed = 200;
  for (size_t d : kDims) {
    Sq8Fixture fx(d, 37, ++seed);
    for (const KernelDispatch* t : SupportedTables()) {
      SCOPED_TRACE(std::string("isa=") + KernelIsaName(t->isa) +
                   " d=" + std::to_string(d));
      std::vector<float> batch(fx.n);
      t->sq8_l2_batch(fx.qadj.data(), fx.scale.data(), d, fx.codes.data(),
                      fx.n, batch.data());
      for (size_t j = 0; j < fx.n; ++j) {
        float one;
        t->sq8_l2_batch(fx.qadj.data(), fx.scale.data(), d,
                        fx.codes.data() + j * d, 1, &one);
        EXPECT_EQ(batch[j], one) << "code " << j;
      }
    }
  }
}

TEST(KernelDispatchTest, Sq8GatherBitIdenticalToBatch) {
  uint64_t seed = 300;
  for (size_t d : kDims) {
    Sq8Fixture fx(d, 29, ++seed);
    std::vector<const uint8_t*> ptrs(fx.n);
    for (size_t j = 0; j < fx.n; ++j) ptrs[j] = fx.codes.data() + j * d;
    for (const KernelDispatch* t : SupportedTables()) {
      SCOPED_TRACE(std::string("isa=") + KernelIsaName(t->isa) +
                   " d=" + std::to_string(d));
      std::vector<float> batch(fx.n), gather(fx.n);
      t->sq8_l2_batch(fx.qadj.data(), fx.scale.data(), d, fx.codes.data(),
                      fx.n, batch.data());
      t->sq8_l2_gather(fx.qadj.data(), fx.scale.data(), d, ptrs.data(), fx.n,
                       gather.data());
      for (size_t j = 0; j < fx.n; ++j) EXPECT_EQ(batch[j], gather[j]);
    }
  }
}

TEST(KernelDispatchTest, Sq8ParityAcrossTiers) {
  const KernelDispatch* scalar = KernelTableFor(KernelIsa::kScalar);
  uint64_t seed = 400;
  for (size_t d : kDims) {
    Sq8Fixture fx(d, 19, ++seed);
    std::vector<float> ref(fx.n);
    scalar->sq8_l2_batch(fx.qadj.data(), fx.scale.data(), d, fx.codes.data(),
                         fx.n, ref.data());
    for (const KernelDispatch* t : SupportedTables()) {
      SCOPED_TRACE(std::string("isa=") + KernelIsaName(t->isa) +
                   " d=" + std::to_string(d));
      std::vector<float> got(fx.n);
      t->sq8_l2_batch(fx.qadj.data(), fx.scale.data(), d, fx.codes.data(),
                      fx.n, got.data());
      for (size_t j = 0; j < fx.n; ++j) {
        EXPECT_NEAR(got[j], ref[j], ParityTol(ref[j], d));
      }
    }
  }
}

TEST(KernelDispatchTest, QuantizerBatchMatchesPreparedSingleCalls) {
  // Same oracle through the public ScalarQuantizer8 API, which always
  // routes through the active tier.
  Rng rng(77);
  const size_t n = 120, d = 24;
  std::vector<float> data(n * d);
  for (auto& v : data) v = rng.Gaussian();
  auto sq = ScalarQuantizer8::Train(data.data(), n, d).ValueOrDie();
  std::vector<uint8_t> codes(n * d);
  for (size_t i = 0; i < n; ++i) {
    sq.Encode(data.data() + i * d, codes.data() + i * d);
  }
  const auto query = RandomVec(d, 78);
  const Sq8Query prep = sq.PrepareQuery(query.data());
  std::vector<float> batch(n);
  sq.DistanceToCodesBatch(prep, codes.data(), n, batch.data());
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(batch[i], sq.DistanceToCode(prep, codes.data() + i * d));
    // The prepared form is algebraically the decode-on-the-fly distance;
    // only rounding differs.
    EXPECT_NEAR(batch[i], sq.DistanceToCode(query.data(), codes.data() + i * d),
                ParityTol(batch[i], d));
  }
}

}  // namespace
}  // namespace vecdb
