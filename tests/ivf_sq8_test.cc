#include <gtest/gtest.h>

#include <filesystem>

#include <memory>

#include "datasets/ground_truth.h"
#include "datasets/synthetic.h"
#include "distance/dispatch.h"
#include "faisslike/ivf_flat.h"
#include "faisslike/ivf_sq8.h"
#include "obs/metrics.h"
#include "pase/ivf_sq8.h"
#include "sql/database.h"
#include "sql/session.h"

namespace vecdb {
namespace {

Dataset TestData() {
  SyntheticOptions opt;
  opt.dim = 32;
  opt.num_base = 2000;
  opt.num_queries = 15;
  opt.num_natural_clusters = 16;
  auto ds = GenerateClustered(opt);
  ComputeGroundTruth(&ds, 10, Metric::kL2);
  return ds;
}

double MeasureRecall(const VectorIndex& index, const Dataset& ds,
                     const SearchParams& params) {
  std::vector<std::vector<Neighbor>> results;
  for (size_t q = 0; q < ds.num_queries; ++q) {
    results.push_back(index.Search(ds.query_vector(q), params).ValueOrDie());
  }
  return MeanRecallAtK(results, ds.ground_truth, 10);
}

TEST(IvfSq8Test, NearFlatRecallAtQuarterSize) {
  auto ds = TestData();
  faisslike::IvfSq8Options sq_opt;
  sq_opt.num_clusters = 16;
  sq_opt.sample_ratio = 0.5;
  faisslike::IvfSq8Index sq_index(ds.dim, sq_opt);
  ASSERT_TRUE(sq_index.Build(ds.base.data(), ds.num_base).ok());

  faisslike::IvfFlatOptions flat_opt;
  flat_opt.num_clusters = 16;
  flat_opt.sample_ratio = 0.5;
  faisslike::IvfFlatIndex flat_index(ds.dim, flat_opt);
  ASSERT_TRUE(flat_index.Build(ds.base.data(), ds.num_base).ok());

  SearchParams params;
  params.k = 10;
  params.nprobe = 16;
  // SQ8 should land close to IVF_FLAT recall (8-bit quantization is mild).
  EXPECT_GE(MeasureRecall(sq_index, ds, params), 0.9);
  // ...at roughly a quarter of the vector payload.
  EXPECT_LT(sq_index.SizeBytes(), flat_index.SizeBytes() / 2);
}

TEST(IvfSq8Test, PaseVariantMatchesRecallBand) {
  auto ds = TestData();
  const std::string dir = ::testing::TempDir() + "/sq8_pase";
  std::filesystem::remove_all(dir);
  auto smgr = std::make_unique<pgstub::StorageManager>(
      pgstub::StorageManager::Open(dir, 8192).ValueOrDie());
  pgstub::BufferManager bufmgr(smgr.get(), 4096);
  pase::PaseIvfSq8Options opt;
  opt.num_clusters = 16;
  opt.sample_ratio = 0.5;
  opt.rel_prefix = "sq8_" + std::string(
      ::testing::UnitTest::GetInstance()->current_test_info()->name());
  pase::PaseIvfSq8Index index({smgr.get(), &bufmgr}, ds.dim, opt);
  ASSERT_TRUE(index.Build(ds.base.data(), ds.num_base).ok());
  SearchParams params;
  params.k = 10;
  params.nprobe = 16;
  EXPECT_GE(MeasureRecall(index, ds, params), 0.85);
  EXPECT_EQ(index.NumVectors(), ds.num_base);
  EXPECT_GT(index.SizeBytes(), 0u);
}

TEST(IvfSq8Test, ErrorPaths) {
  faisslike::IvfSq8Options opt;
  opt.num_clusters = 64;
  faisslike::IvfSq8Index index(8, opt);
  std::vector<float> few(8 * 10, 0.f);
  EXPECT_FALSE(index.Build(few.data(), 10).ok());  // c > n
  SearchParams params;
  EXPECT_FALSE(index.Search(few.data(), params).ok());  // not built
}

filter::SelectionVector EveryOther(size_t n) {
  filter::SelectionVector sel(n);
  for (size_t i = 0; i < n; i += 2) sel.Set(i);
  return sel;
}

std::unique_ptr<pase::PaseIvfSq8Index> BuildPaseSq8(
    const Dataset& ds, pgstub::StorageManager* smgr,
    pgstub::BufferManager* bufmgr, const std::string& prefix) {
  pase::PaseIvfSq8Options opt;
  opt.num_clusters = 16;
  opt.sample_ratio = 0.5;
  opt.rel_prefix = prefix;
  auto index = std::make_unique<pase::PaseIvfSq8Index>(
      pase::PaseEnv{smgr, bufmgr}, ds.dim, opt);
  EXPECT_TRUE(index->Build(ds.base.data(), ds.num_base).ok());
  return index;
}

TEST(IvfSq8Test, FilterStrategiesAgreeAtFullProbe) {
  // Pre-filter and in-filter at nprobe=c scan exactly the same surviving
  // codes through the same gather kernel, so their results must be
  // bit-identical; full-selection pre-filter must likewise match the
  // unfiltered batched scan.
  auto ds = TestData();
  faisslike::IvfSq8Options opt;
  opt.num_clusters = 16;
  opt.sample_ratio = 0.5;
  faisslike::IvfSq8Index index(ds.dim, opt);
  ASSERT_TRUE(index.Build(ds.base.data(), ds.num_base).ok());

  SearchParams params;
  params.k = 10;
  params.nprobe = 16;
  const auto sel = EveryOther(ds.num_base);
  FilterRequest pre, in;
  pre.selection = &sel;
  pre.strategy = filter::FilterStrategy::kPreFilter;
  in.selection = &sel;
  in.strategy = filter::FilterStrategy::kInFilter;
  for (size_t q = 0; q < ds.num_queries; ++q) {
    auto a = index.FilteredSearch(ds.query_vector(q), pre, params)
                 .ValueOrDie();
    auto b = index.FilteredSearch(ds.query_vector(q), in, params)
                 .ValueOrDie();
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].id, b[i].id) << "q=" << q << " rank=" << i;
      EXPECT_EQ(a[i].dist, b[i].dist);
      EXPECT_EQ(a[i].id % 2, 0) << "unselected id surfaced";
    }
  }

  filter::SelectionVector all(ds.num_base);
  for (size_t i = 0; i < ds.num_base; ++i) all.Set(i);
  FilterRequest full;
  full.selection = &all;
  full.strategy = filter::FilterStrategy::kPreFilter;
  for (size_t q = 0; q < ds.num_queries; ++q) {
    auto filtered =
        index.FilteredSearch(ds.query_vector(q), full, params).ValueOrDie();
    auto plain = index.Search(ds.query_vector(q), params).ValueOrDie();
    ASSERT_EQ(filtered.size(), plain.size());
    for (size_t i = 0; i < plain.size(); ++i) {
      EXPECT_EQ(filtered[i].id, plain[i].id);
      EXPECT_EQ(filtered[i].dist, plain[i].dist);
    }
  }
}

TEST(IvfSq8Test, PaseFilterStrategiesAgreeAtFullProbe) {
  auto ds = TestData();
  const std::string dir = ::testing::TempDir() + "/sq8_pase_filter";
  std::filesystem::remove_all(dir);
  auto smgr = std::make_unique<pgstub::StorageManager>(
      pgstub::StorageManager::Open(dir, 8192).ValueOrDie());
  pgstub::BufferManager bufmgr(smgr.get(), 4096);
  auto index = BuildPaseSq8(ds, smgr.get(), &bufmgr, "sq8_filter");

  SearchParams params;
  params.k = 10;
  params.nprobe = 16;
  const auto sel = EveryOther(ds.num_base);
  FilterRequest pre, in;
  pre.selection = &sel;
  pre.strategy = filter::FilterStrategy::kPreFilter;
  in.selection = &sel;
  in.strategy = filter::FilterStrategy::kInFilter;
  for (size_t q = 0; q < ds.num_queries; ++q) {
    auto a = index->FilteredSearch(ds.query_vector(q), pre, params)
                 .ValueOrDie();
    auto b = index->FilteredSearch(ds.query_vector(q), in, params)
                 .ValueOrDie();
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].id, b[i].id) << "q=" << q << " rank=" << i;
      EXPECT_EQ(a[i].dist, b[i].dist);
      EXPECT_EQ(a[i].id % 2, 0);
    }
  }
}

TEST(IvfSq8Test, FastScanCountersReported) {
  auto ds = TestData();
  faisslike::IvfSq8Options opt;
  opt.num_clusters = 16;
  opt.sample_ratio = 0.5;
  faisslike::IvfSq8Index index(ds.dim, opt);
  ASSERT_TRUE(index.Build(ds.base.data(), ds.num_base).ok());

  obs::MetricsRegistry registry;
  registry.SetEnabled(true);
  SearchParams params;
  params.k = 10;
  params.nprobe = 16;
  params.ctx.metrics = &registry;
  auto with_metrics = index.Search(ds.query_vector(0), params).ValueOrDie();
  // nprobe=c scans every stored code exactly once.
  EXPECT_EQ(registry.Value(obs::Counter::kKernelSq8Codes), ds.num_base);
  EXPECT_GE(registry.Value(obs::Counter::kKernelSq8Blocks),
            ds.num_base / Sq8CodeStore::kBlockCodes / 16);
  EXPECT_GT(registry.Value(obs::Counter::kKernelSq8Blocks), 0u);

  // Metrics off (default params): identical results — instrumentation
  // must not perturb the scan.
  SearchParams quiet;
  quiet.k = 10;
  quiet.nprobe = 16;
  auto without = index.Search(ds.query_vector(0), quiet).ValueOrDie();
  ASSERT_EQ(with_metrics.size(), without.size());
  for (size_t i = 0; i < without.size(); ++i) {
    EXPECT_EQ(with_metrics[i].id, without[i].id);
    EXPECT_EQ(with_metrics[i].dist, without[i].dist);
  }
}

TEST(IvfSq8Test, PaseFastScanCountersReported) {
  auto ds = TestData();
  const std::string dir = ::testing::TempDir() + "/sq8_pase_counters";
  std::filesystem::remove_all(dir);
  auto smgr = std::make_unique<pgstub::StorageManager>(
      pgstub::StorageManager::Open(dir, 8192).ValueOrDie());
  pgstub::BufferManager bufmgr(smgr.get(), 4096);
  auto index = BuildPaseSq8(ds, smgr.get(), &bufmgr, "sq8_counters");

  obs::MetricsRegistry registry;
  registry.SetEnabled(true);
  SearchParams params;
  params.k = 10;
  params.nprobe = 16;
  params.ctx.metrics = &registry;
  ASSERT_TRUE(index->Search(ds.query_vector(0), params).ok());
  EXPECT_EQ(registry.Value(obs::Counter::kKernelSq8Codes), ds.num_base);
  EXPECT_GT(registry.Value(obs::Counter::kKernelSq8Blocks), 0u);
}

TEST(IvfSq8Test, ShowMetricsReportsKernelIsa) {
  const std::string dir = ::testing::TempDir() + "/sq8_show_isa";
  std::filesystem::remove_all(dir);
  auto db = std::move(sql::MiniDatabase::Open(dir)).ValueOrDie();
  auto session = db->CreateSession();
  auto result = session->Execute("SHOW METRICS").ValueOrDie();
  const std::string expected =
      std::string("distance.isa: ") + KernelIsaName(ActiveKernelIsa());
  EXPECT_NE(result.message.find(expected), std::string::npos)
      << result.message;
}

TEST(IvfSq8Test, AvailableThroughSql) {
  const std::string dir = ::testing::TempDir() + "/sq8_sql";
  std::filesystem::remove_all(dir);
  auto db = std::move(sql::MiniDatabase::Open(dir)).ValueOrDie();
  auto session = db->CreateSession();
  ASSERT_TRUE(session->Execute("CREATE TABLE t (id int, vec float[4])").ok());
  std::string insert = "INSERT INTO t VALUES ";
  for (int i = 0; i < 64; ++i) {
    if (i > 0) insert += ", ";
    insert += "(" + std::to_string(i) + ", '" + std::to_string(i * 0.1) +
              ",0,0,0')";
  }
  ASSERT_TRUE(session->Execute(insert).ok());
  for (const std::string engine : {"pase", "faiss"}) {
    ASSERT_TRUE(session->Execute("CREATE INDEX sq8_" + engine +
                            " ON t USING ivfsq8 (vec) WITH (clusters=4, "
                            "sample_ratio=1, engine='" +
                            engine + "')")
                    .ok());
    ASSERT_TRUE(session->Execute("DROP INDEX sq8_" + engine).ok());
  }
}

}  // namespace
}  // namespace vecdb
