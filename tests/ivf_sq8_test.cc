#include <gtest/gtest.h>

#include <filesystem>

#include <memory>

#include "datasets/ground_truth.h"
#include "datasets/synthetic.h"
#include "faisslike/ivf_flat.h"
#include "faisslike/ivf_sq8.h"
#include "pase/ivf_sq8.h"
#include "sql/database.h"
#include "sql/session.h"

namespace vecdb {
namespace {

Dataset TestData() {
  SyntheticOptions opt;
  opt.dim = 32;
  opt.num_base = 2000;
  opt.num_queries = 15;
  opt.num_natural_clusters = 16;
  auto ds = GenerateClustered(opt);
  ComputeGroundTruth(&ds, 10, Metric::kL2);
  return ds;
}

double MeasureRecall(const VectorIndex& index, const Dataset& ds,
                     const SearchParams& params) {
  std::vector<std::vector<Neighbor>> results;
  for (size_t q = 0; q < ds.num_queries; ++q) {
    results.push_back(index.Search(ds.query_vector(q), params).ValueOrDie());
  }
  return MeanRecallAtK(results, ds.ground_truth, 10);
}

TEST(IvfSq8Test, NearFlatRecallAtQuarterSize) {
  auto ds = TestData();
  faisslike::IvfSq8Options sq_opt;
  sq_opt.num_clusters = 16;
  sq_opt.sample_ratio = 0.5;
  faisslike::IvfSq8Index sq_index(ds.dim, sq_opt);
  ASSERT_TRUE(sq_index.Build(ds.base.data(), ds.num_base).ok());

  faisslike::IvfFlatOptions flat_opt;
  flat_opt.num_clusters = 16;
  flat_opt.sample_ratio = 0.5;
  faisslike::IvfFlatIndex flat_index(ds.dim, flat_opt);
  ASSERT_TRUE(flat_index.Build(ds.base.data(), ds.num_base).ok());

  SearchParams params;
  params.k = 10;
  params.nprobe = 16;
  // SQ8 should land close to IVF_FLAT recall (8-bit quantization is mild).
  EXPECT_GE(MeasureRecall(sq_index, ds, params), 0.9);
  // ...at roughly a quarter of the vector payload.
  EXPECT_LT(sq_index.SizeBytes(), flat_index.SizeBytes() / 2);
}

TEST(IvfSq8Test, PaseVariantMatchesRecallBand) {
  auto ds = TestData();
  const std::string dir = ::testing::TempDir() + "/sq8_pase";
  std::filesystem::remove_all(dir);
  auto smgr = std::make_unique<pgstub::StorageManager>(
      pgstub::StorageManager::Open(dir, 8192).ValueOrDie());
  pgstub::BufferManager bufmgr(smgr.get(), 4096);
  pase::PaseIvfSq8Options opt;
  opt.num_clusters = 16;
  opt.sample_ratio = 0.5;
  opt.rel_prefix = "sq8_" + std::string(
      ::testing::UnitTest::GetInstance()->current_test_info()->name());
  pase::PaseIvfSq8Index index({smgr.get(), &bufmgr}, ds.dim, opt);
  ASSERT_TRUE(index.Build(ds.base.data(), ds.num_base).ok());
  SearchParams params;
  params.k = 10;
  params.nprobe = 16;
  EXPECT_GE(MeasureRecall(index, ds, params), 0.85);
  EXPECT_EQ(index.NumVectors(), ds.num_base);
  EXPECT_GT(index.SizeBytes(), 0u);
}

TEST(IvfSq8Test, ErrorPaths) {
  faisslike::IvfSq8Options opt;
  opt.num_clusters = 64;
  faisslike::IvfSq8Index index(8, opt);
  std::vector<float> few(8 * 10, 0.f);
  EXPECT_FALSE(index.Build(few.data(), 10).ok());  // c > n
  SearchParams params;
  EXPECT_FALSE(index.Search(few.data(), params).ok());  // not built
}

TEST(IvfSq8Test, AvailableThroughSql) {
  const std::string dir = ::testing::TempDir() + "/sq8_sql";
  std::filesystem::remove_all(dir);
  auto db = std::move(sql::MiniDatabase::Open(dir)).ValueOrDie();
  auto session = db->CreateSession();
  ASSERT_TRUE(session->Execute("CREATE TABLE t (id int, vec float[4])").ok());
  std::string insert = "INSERT INTO t VALUES ";
  for (int i = 0; i < 64; ++i) {
    if (i > 0) insert += ", ";
    insert += "(" + std::to_string(i) + ", '" + std::to_string(i * 0.1) +
              ",0,0,0')";
  }
  ASSERT_TRUE(session->Execute(insert).ok());
  for (const std::string engine : {"pase", "faiss"}) {
    ASSERT_TRUE(session->Execute("CREATE INDEX sq8_" + engine +
                            " ON t USING ivfsq8 (vec) WITH (clusters=4, "
                            "sample_ratio=1, engine='" +
                            engine + "')")
                    .ok());
    ASSERT_TRUE(session->Execute("DROP INDEX sq8_" + engine).ok());
  }
}

}  // namespace
}  // namespace vecdb
