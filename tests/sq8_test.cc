#include "quantizer/sq8.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "distance/kernels.h"

namespace vecdb {
namespace {

TEST(Sq8Test, RejectsEmptyInput) {
  EXPECT_FALSE(ScalarQuantizer8::Train(nullptr, 10, 4).ok());
  std::vector<float> data(8);
  EXPECT_FALSE(ScalarQuantizer8::Train(data.data(), 0, 4).ok());
  EXPECT_FALSE(ScalarQuantizer8::Train(data.data(), 2, 0).ok());
}

TEST(Sq8Test, RoundTripErrorBoundedByStep) {
  Rng rng(3);
  const size_t n = 200, d = 16;
  std::vector<float> data(n * d);
  for (auto& v : data) v = rng.Gaussian();
  auto sq = ScalarQuantizer8::Train(data.data(), n, d).ValueOrDie();
  std::vector<uint8_t> code(d);
  std::vector<float> rec(d);
  // Each dimension's error is at most half a quantization step.
  float vmin = 1e30f, vmax = -1e30f;
  for (float v : data) {
    vmin = std::min(vmin, v);
    vmax = std::max(vmax, v);
  }
  const float max_step = (vmax - vmin) / 255.f;
  for (size_t i = 0; i < n; ++i) {
    sq.Encode(data.data() + i * d, code.data());
    sq.Decode(code.data(), rec.data());
    for (size_t t = 0; t < d; ++t) {
      EXPECT_LE(std::abs(rec[t] - data[i * d + t]), max_step);
    }
  }
}

TEST(Sq8Test, ConstantDimensionHandled) {
  std::vector<float> data = {1.f, 5.f, 1.f, 7.f, 1.f, 9.f};  // dim0 constant
  auto sq = ScalarQuantizer8::Train(data.data(), 3, 2).ValueOrDie();
  std::vector<uint8_t> code(2);
  std::vector<float> rec(2);
  sq.Encode(data.data(), code.data());
  sq.Decode(code.data(), rec.data());
  EXPECT_EQ(code[0], 0);
}

TEST(Sq8Test, OutOfRangeValuesClamp) {
  std::vector<float> data = {0.f, 1.f};
  auto sq = ScalarQuantizer8::Train(data.data(), 2, 1).ValueOrDie();
  std::vector<float> wild = {100.f};
  uint8_t code;
  sq.Encode(wild.data(), &code);
  EXPECT_EQ(code, 255);
  wild[0] = -100.f;
  sq.Encode(wild.data(), &code);
  EXPECT_EQ(code, 0);
}

TEST(Sq8Test, DistanceToCodeMatchesDecodedDistance) {
  Rng rng(5);
  const size_t n = 100, d = 8;
  std::vector<float> data(n * d);
  for (auto& v : data) v = rng.Gaussian();
  auto sq = ScalarQuantizer8::Train(data.data(), n, d).ValueOrDie();
  std::vector<uint8_t> code(d);
  std::vector<float> rec(d), query(d);
  for (auto& v : query) v = rng.Gaussian();
  for (size_t i = 0; i < 20; ++i) {
    sq.Encode(data.data() + i * d, code.data());
    sq.Decode(code.data(), rec.data());
    EXPECT_NEAR(sq.DistanceToCode(query.data(), code.data()),
                L2Sqr(query.data(), rec.data(), d), 1e-3f);
  }
}

TEST(Sq8Test, PreparedQueryMatchesDecodeOnTheFly) {
  // The fast-scan form is an algebraic rewrite of the midpoint decode;
  // both must agree up to float rounding on every dimension shape.
  Rng rng(6);
  for (size_t d : {1ul, 3ul, 7ul, 8ul, 9ul, 16ul, 25ul, 64ul}) {
    const size_t n = 50;
    std::vector<float> data(n * d);
    for (auto& v : data) v = rng.Gaussian();
    auto sq = ScalarQuantizer8::Train(data.data(), n, d).ValueOrDie();
    std::vector<float> query(d);
    for (auto& v : query) v = rng.Gaussian();
    const Sq8Query prep = sq.PrepareQuery(query.data());
    std::vector<uint8_t> code(d);
    for (size_t i = 0; i < n; ++i) {
      sq.Encode(data.data() + i * d, code.data());
      const float slow = sq.DistanceToCode(query.data(), code.data());
      const float fast = sq.DistanceToCode(prep, code.data());
      EXPECT_NEAR(fast, slow, 1e-4f * static_cast<float>(d) + 1e-5f)
          << "d=" << d << " i=" << i;
    }
  }
}

TEST(Sq8Test, CodeStoreAppendAndLayout) {
  const size_t d = 5;
  Sq8CodeStore store;
  store.Reset(d);
  EXPECT_TRUE(store.empty());
  EXPECT_EQ(store.num_blocks(), 0u);
  // Cross the initial capacity (kBlockCodes) to exercise regrowth.
  const size_t n = Sq8CodeStore::kBlockCodes * 3 + 7;
  std::vector<uint8_t> code(d);
  for (size_t i = 0; i < n; ++i) {
    for (size_t t = 0; t < d; ++t) {
      code[t] = static_cast<uint8_t>((i * d + t) % 251);
    }
    store.Append(code.data(), static_cast<int64_t>(i) * 3);
  }
  ASSERT_EQ(store.size(), n);
  EXPECT_EQ(store.code_size(), d);
  EXPECT_EQ(store.num_blocks(), 4u);  // ceil(103 / 32)
  EXPECT_EQ(reinterpret_cast<uintptr_t>(store.codes()) % 64, 0u);
  EXPECT_GE(store.MemoryBytes(), n * d + n * sizeof(int64_t));
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(store.ids()[i], static_cast<int64_t>(i) * 3);
    for (size_t t = 0; t < d; ++t) {
      EXPECT_EQ(store.code_at(i)[t],
                static_cast<uint8_t>((i * d + t) % 251));
    }
  }
  // Codes stay contiguous at code_size stride (the batch-kernel contract).
  EXPECT_EQ(store.code_at(n - 1), store.codes() + (n - 1) * d);
}

TEST(Sq8Test, CodeStoreResetDropsCodes) {
  Sq8CodeStore store;
  store.Reset(4);
  const uint8_t code[4] = {1, 2, 3, 4};
  store.Append(code, 7);
  ASSERT_EQ(store.size(), 1u);
  store.Reset(4);
  EXPECT_TRUE(store.empty());
  store.Append(code, 9);
  ASSERT_EQ(store.size(), 1u);
  EXPECT_EQ(store.ids()[0], 9);
}

TEST(Sq8Test, CodeStoreMoveTransfersOwnership) {
  Sq8CodeStore a;
  a.Reset(2);
  const uint8_t code[2] = {11, 22};
  a.Append(code, 1);
  const uint8_t* raw = a.codes();
  Sq8CodeStore b(std::move(a));
  EXPECT_EQ(b.codes(), raw);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b.code_at(0)[1], 22);
  Sq8CodeStore c;
  c = std::move(b);
  EXPECT_EQ(c.codes(), raw);
  EXPECT_EQ(c.ids()[0], 1);
}

}  // namespace
}  // namespace vecdb
