#include "quantizer/sq8.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "distance/kernels.h"

namespace vecdb {
namespace {

TEST(Sq8Test, RejectsEmptyInput) {
  EXPECT_FALSE(ScalarQuantizer8::Train(nullptr, 10, 4).ok());
  std::vector<float> data(8);
  EXPECT_FALSE(ScalarQuantizer8::Train(data.data(), 0, 4).ok());
  EXPECT_FALSE(ScalarQuantizer8::Train(data.data(), 2, 0).ok());
}

TEST(Sq8Test, RoundTripErrorBoundedByStep) {
  Rng rng(3);
  const size_t n = 200, d = 16;
  std::vector<float> data(n * d);
  for (auto& v : data) v = rng.Gaussian();
  auto sq = ScalarQuantizer8::Train(data.data(), n, d).ValueOrDie();
  std::vector<uint8_t> code(d);
  std::vector<float> rec(d);
  // Each dimension's error is at most half a quantization step.
  float vmin = 1e30f, vmax = -1e30f;
  for (float v : data) {
    vmin = std::min(vmin, v);
    vmax = std::max(vmax, v);
  }
  const float max_step = (vmax - vmin) / 255.f;
  for (size_t i = 0; i < n; ++i) {
    sq.Encode(data.data() + i * d, code.data());
    sq.Decode(code.data(), rec.data());
    for (size_t t = 0; t < d; ++t) {
      EXPECT_LE(std::abs(rec[t] - data[i * d + t]), max_step);
    }
  }
}

TEST(Sq8Test, ConstantDimensionHandled) {
  std::vector<float> data = {1.f, 5.f, 1.f, 7.f, 1.f, 9.f};  // dim0 constant
  auto sq = ScalarQuantizer8::Train(data.data(), 3, 2).ValueOrDie();
  std::vector<uint8_t> code(2);
  std::vector<float> rec(2);
  sq.Encode(data.data(), code.data());
  sq.Decode(code.data(), rec.data());
  EXPECT_EQ(code[0], 0);
}

TEST(Sq8Test, OutOfRangeValuesClamp) {
  std::vector<float> data = {0.f, 1.f};
  auto sq = ScalarQuantizer8::Train(data.data(), 2, 1).ValueOrDie();
  std::vector<float> wild = {100.f};
  uint8_t code;
  sq.Encode(wild.data(), &code);
  EXPECT_EQ(code, 255);
  wild[0] = -100.f;
  sq.Encode(wild.data(), &code);
  EXPECT_EQ(code, 0);
}

TEST(Sq8Test, DistanceToCodeMatchesDecodedDistance) {
  Rng rng(5);
  const size_t n = 100, d = 8;
  std::vector<float> data(n * d);
  for (auto& v : data) v = rng.Gaussian();
  auto sq = ScalarQuantizer8::Train(data.data(), n, d).ValueOrDie();
  std::vector<uint8_t> code(d);
  std::vector<float> rec(d), query(d);
  for (auto& v : query) v = rng.Gaussian();
  for (size_t i = 0; i < 20; ++i) {
    sq.Encode(data.data() + i * d, code.data());
    sq.Decode(code.data(), rec.data());
    EXPECT_NEAR(sq.DistanceToCode(query.data(), code.data()),
                L2Sqr(query.data(), rec.data(), d), 1e-3f);
  }
}

}  // namespace
}  // namespace vecdb
