#include "common/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace vecdb {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.Uniform(bound), bound);
    }
  }
}

TEST(RngTest, UniformFloatInHalfOpenUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const float f = rng.UniformFloat();
    EXPECT_GE(f, 0.f);
    EXPECT_LT(f, 1.f);
  }
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(11);
  double sum = 0, sumsq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sumsq += g * g;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.1);
}

TEST(RngTest, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(13);
  auto sample = rng.SampleWithoutReplacement(100, 30);
  ASSERT_EQ(sample.size(), 30u);
  std::set<uint32_t> seen(sample.begin(), sample.end());
  EXPECT_EQ(seen.size(), 30u);
  for (uint32_t v : sample) EXPECT_LT(v, 100u);
}

TEST(RngTest, SampleClampedToPopulation) {
  Rng rng(17);
  auto sample = rng.SampleWithoutReplacement(10, 50);
  ASSERT_EQ(sample.size(), 10u);
  std::sort(sample.begin(), sample.end());
  for (uint32_t i = 0; i < 10; ++i) EXPECT_EQ(sample[i], i);
}

TEST(RngTest, ReseedRestartsStream) {
  Rng rng(21);
  const uint64_t first = rng.Next();
  rng.Next();
  rng.Seed(21);
  EXPECT_EQ(rng.Next(), first);
}

}  // namespace
}  // namespace vecdb
