#include <gtest/gtest.h>

#include <filesystem>

#include <memory>

#include "bridge/bridged_hnsw.h"
#include "bridge/bridged_ivf_flat.h"
#include "datasets/ground_truth.h"
#include "datasets/synthetic.h"
#include "pase/hnsw.h"

namespace vecdb::bridge {
namespace {

class BridgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/bridge_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    smgr_ = std::make_unique<pgstub::StorageManager>(
        pgstub::StorageManager::Open(dir_, 8192).ValueOrDie());
    bufmgr_ = std::make_unique<pgstub::BufferManager>(smgr_.get(), 8192);

    SyntheticOptions opt;
    opt.dim = 32;
    opt.num_base = 1200;
    opt.num_queries = 10;
    ds_ = GenerateClustered(opt);
    ComputeGroundTruth(&ds_, 10, Metric::kL2);
  }

  pase::PaseEnv Env() { return {smgr_.get(), bufmgr_.get()}; }

  std::string dir_;
  std::unique_ptr<pgstub::StorageManager> smgr_;
  std::unique_ptr<pgstub::BufferManager> bufmgr_;
  Dataset ds_;
};

TEST_F(BridgeTest, AllTogglesOnHighRecall) {
  BridgedIvfFlatOptions opt;
  opt.num_clusters = 24;
  opt.sample_ratio = 0.5;
  BridgedIvfFlatIndex index(Env(), ds_.dim, opt);
  ASSERT_TRUE(index.Build(ds_.base.data(), ds_.num_base).ok());
  SearchParams params;
  params.k = 10;
  params.nprobe = 24;
  std::vector<std::vector<Neighbor>> results;
  for (size_t q = 0; q < ds_.num_queries; ++q) {
    results.push_back(index.Search(ds_.query_vector(q), params).ValueOrDie());
  }
  EXPECT_DOUBLE_EQ(MeanRecallAtK(results, ds_.ground_truth, 10), 1.0);
}

TEST_F(BridgeTest, MemoryAndPagePathsReturnSameResults) {
  BridgedIvfFlatOptions mem, page;
  mem.num_clusters = page.num_clusters = 16;
  mem.rel_prefix = "mem";
  page.rel_prefix = "page";
  page.memory_table = false;
  // Same seed/kmeans config => identical centroids and buckets.
  BridgedIvfFlatIndex a(Env(), ds_.dim, mem), b(Env(), ds_.dim, page);
  ASSERT_TRUE(a.Build(ds_.base.data(), ds_.num_base).ok());
  ASSERT_TRUE(b.Build(ds_.base.data(), ds_.num_base).ok());
  SearchParams params;
  params.k = 10;
  params.nprobe = 8;
  for (size_t q = 0; q < ds_.num_queries; ++q) {
    EXPECT_EQ(a.Search(ds_.query_vector(q), params).ValueOrDie(),
              b.Search(ds_.query_vector(q), params).ValueOrDie());
  }
}

TEST_F(BridgeTest, KHeapAndNHeapReturnSameResults) {
  BridgedIvfFlatOptions kh, nh;
  kh.num_clusters = nh.num_clusters = 16;
  kh.rel_prefix = "kh";
  nh.rel_prefix = "nh";
  nh.k_heap = false;
  BridgedIvfFlatIndex a(Env(), ds_.dim, kh), b(Env(), ds_.dim, nh);
  ASSERT_TRUE(a.Build(ds_.base.data(), ds_.num_base).ok());
  ASSERT_TRUE(b.Build(ds_.base.data(), ds_.num_base).ok());
  SearchParams params;
  params.k = 10;
  params.nprobe = 8;
  for (size_t q = 0; q < ds_.num_queries; ++q) {
    EXPECT_EQ(a.Search(ds_.query_vector(q), params).ValueOrDie(),
              b.Search(ds_.query_vector(q), params).ValueOrDie());
  }
}

TEST_F(BridgeTest, ParallelLocalAndGlobalHeapsAgree) {
  BridgedIvfFlatOptions local, global;
  local.num_clusters = global.num_clusters = 16;
  local.rel_prefix = "pl";
  global.rel_prefix = "pg";
  global.local_heaps = false;
  BridgedIvfFlatIndex a(Env(), ds_.dim, local), b(Env(), ds_.dim, global);
  ASSERT_TRUE(a.Build(ds_.base.data(), ds_.num_base).ok());
  ASSERT_TRUE(b.Build(ds_.base.data(), ds_.num_base).ok());
  SearchParams params;
  params.k = 10;
  params.nprobe = 16;
  params.num_threads = 4;
  ParallelAccounting acct_local, acct_global;
  for (size_t q = 0; q < 5; ++q) {
    params.ctx.accounting = &acct_local;
    auto ra = a.Search(ds_.query_vector(q), params).ValueOrDie();
    params.ctx.accounting = &acct_global;
    auto rb = b.Search(ds_.query_vector(q), params).ValueOrDie();
    EXPECT_EQ(ra, rb);
  }
  // The global locked heap serializes more work than the local merge.
  EXPECT_GT(acct_global.serial_nanos, acct_local.serial_nanos);
}

TEST_F(BridgeTest, BridgedHnswMatchesRecallOfPaseHnsw) {
  BridgedHnswOptions bopt;
  bopt.bnn = 16;
  bopt.efb = 40;
  BridgedHnswIndex bridged(Env(), ds_.dim, bopt);
  ASSERT_TRUE(bridged.Build(ds_.base.data(), ds_.num_base).ok());

  pase::PaseHnswOptions popt;
  popt.bnn = 16;
  popt.efb = 40;
  popt.rel_prefix = "cmp_pase";
  pase::PaseHnswIndex paseidx(Env(), ds_.dim, popt);
  ASSERT_TRUE(paseidx.Build(ds_.base.data(), ds_.num_base).ok());

  SearchParams params;
  params.k = 10;
  params.efs = 100;
  std::vector<std::vector<Neighbor>> rb, rp;
  for (size_t q = 0; q < ds_.num_queries; ++q) {
    rb.push_back(bridged.Search(ds_.query_vector(q), params).ValueOrDie());
    rp.push_back(paseidx.Search(ds_.query_vector(q), params).ValueOrDie());
  }
  const double bridged_recall = MeanRecallAtK(rb, ds_.ground_truth, 10);
  const double pase_recall = MeanRecallAtK(rp, ds_.ground_truth, 10);
  EXPECT_GE(bridged_recall, 0.85);
  EXPECT_GE(pase_recall, 0.85);
}

TEST_F(BridgeTest, PackedImageSmallerThanPagePerVertex) {
  BridgedHnswOptions packed, loose;
  packed.bnn = loose.bnn = 8;
  packed.rel_prefix = "packed";
  loose.rel_prefix = "loose";
  loose.pack_pages = false;
  loose.compact_tuples = false;
  BridgedHnswIndex a(Env(), ds_.dim, packed), b(Env(), ds_.dim, loose);
  ASSERT_TRUE(a.Build(ds_.base.data(), 500).ok());
  ASSERT_TRUE(b.Build(ds_.base.data(), 500).ok());
  // Fig 13's fix: the memory-centric layout must be several times smaller.
  EXPECT_LT(a.SizeBytes() * 2, b.SizeBytes());
}

TEST_F(BridgeTest, ErrorPaths) {
  BridgedIvfFlatOptions opt;
  BridgedIvfFlatIndex bad(pase::PaseEnv{}, ds_.dim, opt);
  EXPECT_FALSE(bad.Build(ds_.base.data(), 100).ok());
  BridgedIvfFlatIndex unbuilt(Env(), ds_.dim, opt);
  SearchParams params;
  EXPECT_FALSE(unbuilt.Search(ds_.query_vector(0), params).ok());
}

}  // namespace
}  // namespace vecdb::bridge
