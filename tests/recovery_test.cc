// Crash recovery tests for MiniDatabase: durable open round trips, the
// checkpoint ordering protocol, WAL size bounding, and the fault-injection
// harness that kills the engine at hundreds of sampled byte offsets of its
// write stream and checks every recovered state against a logical oracle.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "pgstub/bufmgr.h"
#include "pgstub/heap_table.h"
#include "pgstub/vfs.h"
#include "pgstub/wal.h"
#include "sql/database.h"
#include "sql/session.h"

namespace vecdb::sql {
namespace {

std::string TestDir(const char* suffix) {
  std::string dir = ::testing::TempDir() + "/rec_" +
                    ::testing::UnitTest::GetInstance()
                        ->current_test_info()
                        ->name() +
                    "_" + suffix;
  std::filesystem::remove_all(dir);
  return dir;
}

/// A small pool: the default 512MB one is zero-filled on every Open, which
/// would dominate a harness that opens hundreds of databases.
DatabaseOptions SmallPool() {
  DatabaseOptions options;
  options.pool_pages = 256;
  return options;
}

std::string Vec4(int seed) {
  return std::to_string(seed % 7) + "," + std::to_string((seed / 7) % 7) +
         "," + std::to_string((seed / 49) % 7) + "," + std::to_string(seed);
}

std::string InsertRow(int64_t id) {
  return "INSERT INTO t VALUES (" + std::to_string(id) + ", '" +
         Vec4(static_cast<int>(id)) + "')";
}

/// Executes one statement on a fresh session. These tests open and reopen
/// databases constantly, so a one-shot session per statement keeps the
/// crash/restart scopes simple.
Result<QueryResult> Exec(MiniDatabase* db, const std::string& sql) {
  return db->CreateSession()->Execute(sql);
}

/// All live row ids via a sequential scan (the <#> operator never uses an
/// index, so this is exact regardless of index state or recall).
Result<std::set<int64_t>> LiveIds(MiniDatabase* db) {
  auto result =
      Exec(db, "SELECT id FROM t ORDER BY vec <#> '1,1,1,1' LIMIT 100000");
  if (!result.ok()) return result.status();
  std::set<int64_t> ids;
  for (const auto& row : result->rows) ids.insert(row.id);
  return ids;
}

TEST(RecoveryTest, DurableOpenRoundTrip) {
  const std::string dir = TestDir("data");
  std::set<int64_t> before;
  {
    auto db = MiniDatabase::Open(dir, SmallPool()).ValueOrDie();
    ASSERT_TRUE(Exec(db.get(), "CREATE TABLE t (id int, vec float[4])").ok());
    for (int i = 0; i < 60; ++i) {
      ASSERT_TRUE(Exec(db.get(), InsertRow(i)).ok());
    }
    ASSERT_TRUE(Exec(db.get(), "CREATE INDEX t_idx ON t USING ivfflat (vec) "
                            "WITH (clusters=4, sample_ratio=1)")
                    .ok());
    ASSERT_TRUE(Exec(db.get(), "DELETE FROM t WHERE id = 7").ok());
    ASSERT_TRUE(Exec(db.get(), "DELETE FROM t WHERE id = 41").ok());
    before = std::move(LiveIds(db.get())).ValueOrDie();
    ASSERT_EQ(before.size(), 58u);
    // No CHECKPOINT, no clean shutdown: everything must come back from
    // the manifest + catalog + WAL alone.
  }
  auto db = MiniDatabase::Open(dir, SmallPool()).ValueOrDie();
  EXPECT_EQ(std::move(LiveIds(db.get())).ValueOrDie(), before);
  // The index came back (rebuilt) and serves: nearest to row 3's vector.
  auto hit = Exec(db.get(), "SELECT id FROM t ORDER BY vec <-> '" + Vec4(3) +
                         "' OPTIONS (nprobe=4) LIMIT 1");
  ASSERT_TRUE(hit.ok());
  ASSERT_EQ(hit->rows.size(), 1u);
  EXPECT_EQ(hit->rows[0].id, 3);
  // And the database still accepts writes.
  ASSERT_TRUE(Exec(db.get(), InsertRow(1000)).ok());
  EXPECT_EQ(std::move(LiveIds(db.get())).ValueOrDie().size(), 59u);
}

TEST(RecoveryTest, SnapshotReloadMatchesRebuild) {
  const std::string dir = TestDir("data");
  DatabaseOptions options = SmallPool();
  options.index_recovery = IndexRecovery::kReload;
  std::set<int64_t> before;
  {
    auto db = MiniDatabase::Open(dir, options).ValueOrDie();
    ASSERT_TRUE(Exec(db.get(), "CREATE TABLE t (id int, vec float[4])").ok());
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(Exec(db.get(), InsertRow(i)).ok());
    }
    ASSERT_TRUE(Exec(db.get(), "CREATE INDEX t_idx ON t USING ivfflat (vec) "
                            "WITH (clusters=4, sample_ratio=1)")
                    .ok());
    // Snapshot the index at 50 rows, then keep writing: recovery must
    // reload the snapshot and top it up with the 10 post-snapshot rows
    // and the post-snapshot delete.
    ASSERT_TRUE(Exec(db.get(), "CHECKPOINT").ok());
    for (int i = 50; i < 60; ++i) {
      ASSERT_TRUE(Exec(db.get(), InsertRow(i)).ok());
    }
    ASSERT_TRUE(Exec(db.get(), "DELETE FROM t WHERE id = 55").ok());
    before = std::move(LiveIds(db.get())).ValueOrDie();
  }
  auto db = MiniDatabase::Open(dir, options).ValueOrDie();
  EXPECT_EQ(std::move(LiveIds(db.get())).ValueOrDie(), before);
  // Exact scan over all clusters: every live row reachable, 55 is not.
  auto hit = Exec(db.get(), "SELECT id FROM t ORDER BY vec <-> '" + Vec4(55) +
                         "' OPTIONS (nprobe=4) LIMIT 60");
  ASSERT_TRUE(hit.ok());
  std::set<int64_t> via_index;
  for (const auto& row : hit->rows) via_index.insert(row.id);
  EXPECT_EQ(via_index, before);
}

// The v1 bug this PR fixes: LogCheckpoint() was called without first
// forcing dirty pages to storage, so replay trusted a checkpoint whose
// claim ("everything before me is on disk") was false, and pages vanished.
TEST(CheckpointOrderingTest, CheckpointRecordWithoutFlushLosesPages) {
  const std::string dir = TestDir("naive");
  const std::string wal_path = dir + "/wal.log";
  {
    auto smgr = std::make_unique<pgstub::StorageManager>(
        pgstub::StorageManager::Open(dir, 8192).ValueOrDie());
    auto wal = std::move(pgstub::WalManager::Open(wal_path)).ValueOrDie();
    pgstub::BufferManager bufmgr(smgr.get(), 64);
    bufmgr.SetWal(&wal);
    auto table = std::move(pgstub::HeapTable::Create(&bufmgr, smgr.get(),
                                                     "t", 4))
                     .ValueOrDie();
    const float vec[4] = {1.f, 2.f, 3.f, 4.f};
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(table.Insert(i, vec).ok());
    }
    ASSERT_TRUE(wal.Flush().ok());
    // NAIVE checkpoint: the record without the FlushAll before it.
    ASSERT_TRUE(wal.LogCheckpoint().ok());
    // Crash: dirty pages die in the pool.
  }
  auto smgr = std::make_unique<pgstub::StorageManager>(
      pgstub::StorageManager::Open(dir, 8192).ValueOrDie());
  ASSERT_TRUE(pgstub::WalManager::Recover(wal_path, smgr.get()).ok());
  pgstub::BufferManager bufmgr(smgr.get(), 64);
  auto table =
      std::move(pgstub::HeapTable::Attach(&bufmgr, smgr.get(), "t", 4))
          .ValueOrDie();
  // Replay (correctly) skipped everything before the checkpoint record,
  // and the data pages never reached storage: the rows are GONE. This is
  // what makes the ordering in MiniDatabase::Checkpoint load-bearing.
  EXPECT_LT(table.num_rows(), 50u);
}

TEST(CheckpointOrderingTest, DatabaseCheckpointSurvivesCrash) {
  const std::string dir = TestDir("ordered");
  std::set<int64_t> before;
  {
    auto db = MiniDatabase::Open(dir, SmallPool()).ValueOrDie();
    ASSERT_TRUE(Exec(db.get(), "CREATE TABLE t (id int, vec float[4])").ok());
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(Exec(db.get(), InsertRow(i)).ok());
    }
    // The real protocol: FlushAll + SyncAll + catalog BEFORE the record.
    ASSERT_TRUE(Exec(db.get(), "CHECKPOINT").ok());
    // Post-checkpoint writes ride on the (rotated) WAL.
    for (int i = 50; i < 55; ++i) {
      ASSERT_TRUE(Exec(db.get(), InsertRow(i)).ok());
    }
    before = std::move(LiveIds(db.get())).ValueOrDie();
    // Crash.
  }
  auto db = MiniDatabase::Open(dir, SmallPool()).ValueOrDie();
  EXPECT_EQ(std::move(LiveIds(db.get())).ValueOrDie(), before);
}

TEST(RecoveryTest, AutoCheckpointBoundsWalSize) {
  const std::string dir = TestDir("data");
  DatabaseOptions options = SmallPool();
  options.checkpoint_wal_bytes = 64 << 10;
  auto db = MiniDatabase::Open(dir, options).ValueOrDie();
  ASSERT_TRUE(Exec(db.get(), "CREATE TABLE t (id int, vec float[4])").ok());
  // Each single-row insert logs a full 8KB page image; without rotation
  // 200 of them would pile up ~1.6MB of log.
  const uint64_t slack = 2 * 8192 + 4096;  // one statement's worth + frames
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(Exec(db.get(), InsertRow(i)).ok());
    ASSERT_LE(db->wal()->size_bytes(), options.checkpoint_wal_bytes + slack)
        << "after insert " << i;
  }
  EXPECT_GE(obs::MetricsRegistry::Global().Value(
                obs::Counter::kWalCheckpoints),
            3u);
  // Everything is still there.
  EXPECT_EQ(std::move(LiveIds(db.get())).ValueOrDie().size(), 200u);
}

// ---------------------------------------------------------------------------
// The fault-injection harness: run a fixed workload, measure its total
// write volume, then re-run it against a FaultInjectionVfs armed to crash
// at >= 200 byte offsets sampled across that volume. After each crash,
// reopen the directory with a clean Vfs (as a restarted process would) and
// require the recovered database to equal the logical oracle after some
// prefix of the workload — a prefix at least as long as the acknowledged
// one, since an acknowledged statement must never be lost.

struct WorkloadResult {
  size_t acked = 0;  ///< statements acknowledged before the crash
};

const std::vector<std::string>& KillWorkload() {
  static const std::vector<std::string>* ops = [] {
    auto* v = new std::vector<std::string>;
    v->push_back("CREATE TABLE t (id int, vec float[4])");
    for (int i = 0; i < 12; ++i) v->push_back(InsertRow(i));
    v->push_back("DELETE FROM t WHERE id = 3");
    for (int i = 12; i < 20; ++i) v->push_back(InsertRow(i));
    v->push_back("CREATE INDEX t_idx ON t USING ivfflat (vec) "
                 "WITH (clusters=2, sample_ratio=1)");
    for (int i = 20; i < 32; ++i) v->push_back(InsertRow(i));
    v->push_back("DELETE FROM t WHERE id = 17");
    v->push_back("DELETE FROM t WHERE id = 25");
    for (int i = 32; i < 40; ++i) v->push_back(InsertRow(i));
    v->push_back("CHECKPOINT");
    for (int i = 40; i < 48; ++i) v->push_back(InsertRow(i));
    v->push_back("DELETE FROM t WHERE id = 44");
    return v;
  }();
  return *ops;
}

/// Logical oracle: the live id set after each workload prefix; nullopt
/// while the table does not exist yet.
std::vector<std::optional<std::set<int64_t>>> OracleStates() {
  std::vector<std::optional<std::set<int64_t>>> states;
  states.emplace_back(std::nullopt);  // before any op
  std::optional<std::set<int64_t>> live;
  for (const auto& op : KillWorkload()) {
    if (op.rfind("CREATE TABLE", 0) == 0) {
      live.emplace();
    } else if (op.rfind("INSERT", 0) == 0) {
      const size_t lp = op.find('(');
      live->insert(std::stoll(op.substr(lp + 1)));
    } else if (op.rfind("DELETE", 0) == 0) {
      const size_t eq = op.find('=');
      live->erase(std::stoll(op.substr(eq + 1)));
    }
    states.push_back(live);
  }
  return states;
}

/// Runs the workload until a statement fails under an injected crash.
WorkloadResult RunWorkload(MiniDatabase* db,
                           const pgstub::FaultInjectionVfs* vfs) {
  WorkloadResult out;
  for (const auto& op : KillWorkload()) {
    auto result = Exec(db, op);
    if (result.ok()) {
      ++out.acked;
      continue;
    }
    // Only an injected crash may fail the workload; anything else is a
    // test bug worth failing loudly on.
    EXPECT_TRUE(vfs != nullptr && vfs->crashed())
        << op << " -> " << result.status().ToString();
    break;
  }
  return out;
}

TEST(FaultInjectionTest, KillAtSampledWriteOffsetsRecoversConsistently) {
  DatabaseOptions options = SmallPool();
  // Small enough that several auto-checkpoints (and rotations) land inside
  // the workload, so cuts hit the checkpoint protocol too.
  options.checkpoint_wal_bytes = 48 << 10;

  // Phase 1: measure the workload's total write volume.
  pgstub::FaultInjectionVfs vfs(pgstub::Vfs::Default());
  const std::string dir = TestDir("data");
  uint64_t total_bytes = 0;
  {
    vfs.ArmAfterBytes(UINT64_MAX);
    DatabaseOptions measured = options;
    measured.vfs = &vfs;
    auto db = MiniDatabase::Open(dir, measured).ValueOrDie();
    WorkloadResult clean = RunWorkload(db.get(), nullptr);
    ASSERT_EQ(clean.acked, KillWorkload().size());
    total_bytes = vfs.bytes_written();
    ASSERT_GT(total_bytes, 100u << 10) << "workload too small to sample";
  }

  const auto oracle = OracleStates();
  constexpr uint64_t kSamples = 211;  // >= 200, coprime-ish stride
  size_t crashes_mid_stream = 0;
  for (uint64_t sample = 0; sample < kSamples; ++sample) {
    const uint64_t budget = sample * total_bytes / kSamples;
    std::filesystem::remove_all(dir);

    // Phase 2a: run until the injected crash.
    WorkloadResult crashed;
    bool opened = false;
    {
      vfs.ArmAfterBytes(budget);
      DatabaseOptions armed = options;
      armed.vfs = &vfs;
      auto db = MiniDatabase::Open(dir, armed);
      if (db.ok()) {
        opened = true;
        crashed = RunWorkload(db->get(), &vfs);
      }
      // The process dies here; nothing it still held in memory counts.
    }
    vfs.Disarm();
    if (opened && crashed.acked < KillWorkload().size()) {
      ++crashes_mid_stream;
    }

    // Phase 2b: a "restarted process" opens the directory with a clean
    // Vfs. This must ALWAYS succeed, whatever the cut did.
    auto db = MiniDatabase::Open(dir, options);
    ASSERT_TRUE(db.ok()) << "budget " << budget << ": "
                         << db.status().ToString();

    // The recovered state must equal the oracle after some prefix no
    // shorter than the acknowledged one (an acked statement is durable;
    // the statement in flight at the crash may or may not have landed).
    auto live = LiveIds(db->get());
    std::optional<std::set<int64_t>> recovered;
    if (live.ok()) {
      recovered = std::move(*live);
    } else {
      ASSERT_TRUE(live.status().IsNotFound())
          << "budget " << budget << ": " << live.status().ToString();
    }
    bool matched = false;
    for (size_t p = crashed.acked; p < oracle.size(); ++p) {
      if (oracle[p] == recovered) {
        matched = true;
        break;
      }
    }
    ASSERT_TRUE(matched) << "budget " << budget << ", acked "
                         << crashed.acked << ": recovered state matches no "
                         << "workload prefix >= the acknowledged one";

    // And the survivor serves reads and writes.
    if (recovered.has_value()) {
      ASSERT_TRUE(Exec(db->get(), InsertRow(9000)).ok())
          << "budget " << budget;
      auto after = std::move(LiveIds(db->get())).ValueOrDie();
      EXPECT_EQ(after.size(), recovered->size() + 1) << "budget " << budget;
    }
  }
  // The sampling must actually exercise mid-stream crashes, not just
  // trivially-empty or trivially-complete runs.
  EXPECT_GT(crashes_mid_stream, kSamples / 2);
}

// TSan smoke: concurrent WAL-logging writers (dirty unpins from several
// heaps through one buffer manager) racing a checkpointer that flushes,
// logs the record, and rotates. Exercises the bufmgr.mu_ -> wal.mu_ lock
// order under contention.
TEST(FaultInjectionTest, ConcurrentLoggingAndCheckpoint) {
  const std::string dir = TestDir("data");
  auto smgr = std::make_unique<pgstub::StorageManager>(
      pgstub::StorageManager::Open(dir, 8192).ValueOrDie());
  auto wal = std::move(pgstub::WalManager::Open(dir + "/wal.log"))
                 .ValueOrDie();
  pgstub::BufferManager bufmgr(smgr.get(), 256);
  bufmgr.SetWal(&wal);

  constexpr int kWriters = 4;
  constexpr int kRowsPerWriter = 300;
  std::vector<pgstub::HeapTable> tables;
  for (int w = 0; w < kWriters; ++w) {
    tables.push_back(std::move(pgstub::HeapTable::Create(
                                   &bufmgr, smgr.get(),
                                   "t" + std::to_string(w), 4))
                         .ValueOrDie());
  }
  std::atomic<bool> done{false};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      const float vec[4] = {static_cast<float>(w), 1.f, 2.f, 3.f};
      for (int i = 0; i < kRowsPerWriter; ++i) {
        ASSERT_TRUE(tables[w].Insert(i, vec).ok());
      }
    });
  }
  std::thread checkpointer([&] {
    while (!done.load(std::memory_order_relaxed)) {
      // A writer may hold a pin on a dirty page; FlushAll refuses rather
      // than flush a torn image. Back off and retry next round.
      if (!bufmgr.FlushAll().ok()) {
        std::this_thread::yield();
        continue;
      }
      ASSERT_TRUE(smgr->SyncAll().ok());
      ASSERT_TRUE(wal.LogCheckpoint().ok());
      ASSERT_TRUE(wal.Rotate().ok());
      std::this_thread::yield();
    }
  });
  for (auto& t : writers) t.join();
  done.store(true, std::memory_order_relaxed);
  checkpointer.join();
  ASSERT_TRUE(bufmgr.wal_error().ok());
  // Quiesced final flush: a checkpoint record written while writers were
  // still dirtying pages may (correctly) claim less than the final state,
  // so force the remainder out before the simulated crash to make the
  // recovered row count exact.
  ASSERT_TRUE(bufmgr.FlushAll().ok());
  ASSERT_TRUE(smgr->SyncAll().ok());

  // Crash-recover and count: every row is either in a flushed page or an
  // intact post-checkpoint WAL image.
  tables.clear();
  auto smgr2 = std::make_unique<pgstub::StorageManager>(
      pgstub::StorageManager::Open(dir, 8192).ValueOrDie());
  ASSERT_TRUE(
      pgstub::WalManager::Recover(dir + "/wal.log", smgr2.get()).ok());
  pgstub::BufferManager bufmgr2(smgr2.get(), 256);
  for (int w = 0; w < kWriters; ++w) {
    auto table = std::move(pgstub::HeapTable::Attach(
                               &bufmgr2, smgr2.get(),
                               "t" + std::to_string(w), 4))
                     .ValueOrDie();
    EXPECT_EQ(table.num_rows(), static_cast<size_t>(kRowsPerWriter));
  }
}

}  // namespace
}  // namespace vecdb::sql
