#include "core/factory.h"

#include <gtest/gtest.h>

#include <filesystem>

#include <memory>

#include "datasets/synthetic.h"
#include "pgstub/bufmgr.h"

namespace vecdb {
namespace {

class FactoryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const std::string dir =
        ::testing::TempDir() + "/factory_" +
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir);
    smgr_ = std::make_unique<pgstub::StorageManager>(
        pgstub::StorageManager::Open(dir, 8192).ValueOrDie());
    bufmgr_ = std::make_unique<pgstub::BufferManager>(smgr_.get(), 2048);
    SyntheticOptions opt;
    opt.dim = 8;
    opt.num_base = 300;
    opt.num_queries = 3;
    ds_ = GenerateClustered(opt);
  }
  pase::PaseEnv Env() { return {smgr_.get(), bufmgr_.get()}; }

  std::unique_ptr<pgstub::StorageManager> smgr_;
  std::unique_ptr<pgstub::BufferManager> bufmgr_;
  Dataset ds_;
};

TEST_F(FactoryTest, EveryMethodEngineComboBuildsAndSearches) {
  struct Combo {
    const char* method;
    const char* engine;
  };
  const Combo combos[] = {
      {"flat", "faiss"},    {"ivfflat", "faiss"}, {"ivfpq", "faiss"},
      {"ivfsq8", "faiss"},  {"hnsw", "faiss"},    {"ivfflat", "pase"},
      {"ivfpq", "pase"},    {"ivfsq8", "pase"},   {"hnsw", "pase"},
      {"ivfflat", "bridge"}, {"hnsw", "bridge"},
  };
  int counter = 0;
  for (const auto& combo : combos) {
    IndexSpec spec;
    spec.method = combo.method;
    spec.engine = combo.engine;
    spec.dim = ds_.dim;
    spec.options = {{"clusters", 4}, {"sample_ratio", 1},
                    {"m", 4},        {"pq_codes", 16},
                    {"bnn", 8},      {"efb", 16}};
    spec.rel_prefix = "f" + std::to_string(counter++);
    auto index = CreateIndex(spec, Env());
    ASSERT_TRUE(index.ok()) << combo.method << "/" << combo.engine << ": "
                            << index.status().ToString();
    ASSERT_TRUE((*index)->Build(ds_.base.data(), ds_.num_base).ok())
        << combo.method << "/" << combo.engine;
    SearchParams params;
    params.k = 5;
    params.nprobe = 4;
    params.efs = 20;
    auto results = (*index)->Search(ds_.query_vector(0), params);
    ASSERT_TRUE(results.ok()) << combo.method << "/" << combo.engine;
    EXPECT_EQ(results->size(), 5u) << combo.method << "/" << combo.engine;
  }
}

TEST_F(FactoryTest, RejectsBadSpecs) {
  IndexSpec spec;
  spec.method = "ivfflat";
  spec.dim = 0;  // missing dim
  EXPECT_FALSE(CreateIndex(spec).ok());

  spec.dim = 8;
  spec.engine = "oracle";
  EXPECT_TRUE(CreateIndex(spec).status().IsInvalidArgument());

  spec.engine = "faiss";
  spec.method = "btree";
  EXPECT_TRUE(CreateIndex(spec).status().IsInvalidArgument());

  spec.method = "ivfflat";
  spec.options = {{"clustres", 16}};  // typo must be caught
  EXPECT_TRUE(CreateIndex(spec).status().IsInvalidArgument());
}

TEST_F(FactoryTest, PageEnginesRequireEnv) {
  IndexSpec spec;
  spec.method = "ivfflat";
  spec.engine = "pase";
  spec.dim = 8;
  EXPECT_TRUE(CreateIndex(spec).status().IsInvalidArgument());
  EXPECT_TRUE(CreateIndex(spec, Env()).ok());
  // The faiss engine ignores the env entirely.
  spec.engine = "faiss";
  EXPECT_TRUE(CreateIndex(spec).ok());
}

TEST_F(FactoryTest, BridgeRejectsUnsupportedMethods) {
  IndexSpec spec;
  spec.method = "ivfpq";
  spec.engine = "bridge";
  spec.dim = 8;
  EXPECT_TRUE(CreateIndex(spec, Env()).status().IsNotSupported());
}

}  // namespace
}  // namespace vecdb
