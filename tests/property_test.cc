// Property-based sweeps over randomized inputs and parameter grids.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <set>
#include <vector>

#include "common/random.h"
#include "datasets/ground_truth.h"
#include "datasets/synthetic.h"
#include "distance/kernels.h"
#include "faisslike/hnsw.h"
#include "faisslike/ivf_flat.h"
#include "pgstub/page.h"
#include "topk/heaps.h"

namespace vecdb {
namespace {

// --- Metric axioms over random vectors. ---------------------------------

class MetricAxiomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MetricAxiomTest, L2IsAMetricSquared) {
  Rng rng(GetParam());
  const size_t d = 16;
  std::vector<float> a(d), b(d), c(d);
  for (size_t i = 0; i < d; ++i) {
    a[i] = rng.Gaussian();
    b[i] = rng.Gaussian();
    c[i] = rng.Gaussian();
  }
  // Non-negativity & identity.
  EXPECT_GE(L2Sqr(a.data(), b.data(), d), 0.f);
  EXPECT_NEAR(L2Sqr(a.data(), a.data(), d), 0.f, 1e-6f);
  // Symmetry.
  EXPECT_FLOAT_EQ(L2Sqr(a.data(), b.data(), d), L2Sqr(b.data(), a.data(), d));
  // Triangle inequality on the (non-squared) distances.
  const float ab = std::sqrt(L2Sqr(a.data(), b.data(), d));
  const float bc = std::sqrt(L2Sqr(b.data(), c.data(), d));
  const float ac = std::sqrt(L2Sqr(a.data(), c.data(), d));
  EXPECT_LE(ac, ab + bc + 1e-4f);
}

TEST_P(MetricAxiomTest, CosineBounds) {
  Rng rng(GetParam() + 1000);
  const size_t d = 8;
  std::vector<float> a(d), b(d);
  for (size_t i = 0; i < d; ++i) {
    a[i] = rng.Gaussian();
    b[i] = rng.Gaussian();
  }
  const float cd = CosineDistance(a.data(), b.data(), d);
  EXPECT_GE(cd, -1e-5f);
  EXPECT_LE(cd, 2.f + 1e-5f);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricAxiomTest,
                         ::testing::Range<uint64_t>(1, 21));

// --- Top-k heaps vs std::partial_sort on random streams. -----------------

struct HeapCase {
  size_t n;
  size_t k;
  uint64_t seed;
};

class HeapPropertyTest : public ::testing::TestWithParam<HeapCase> {};

TEST_P(HeapPropertyTest, BothHeapsMatchPartialSort) {
  const auto [n, k, seed] = GetParam();
  Rng rng(seed);
  std::vector<Neighbor> all;
  KMaxHeap kheap(k);
  NHeap nheap;
  for (size_t i = 0; i < n; ++i) {
    // Duplicates on purpose: quantized distances collide often.
    const float d = static_cast<float>(rng.Uniform(50));
    all.push_back({d, static_cast<int64_t>(i)});
    kheap.Push(d, static_cast<int64_t>(i));
    nheap.Push(d, static_cast<int64_t>(i));
  }
  std::sort(all.begin(), all.end());
  if (all.size() > k) all.resize(k);
  EXPECT_EQ(kheap.TakeSorted(), all);
  EXPECT_EQ(nheap.PopK(k), all);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, HeapPropertyTest,
    ::testing::Values(HeapCase{1, 1, 1}, HeapCase{10, 3, 2},
                      HeapCase{100, 100, 3}, HeapCase{1000, 10, 4},
                      HeapCase{1000, 999, 5}, HeapCase{5000, 100, 6},
                      HeapCase{64, 1, 7}, HeapCase{2, 10, 8}));

// --- IVF_FLAT with nprobe == c equals brute force, across configs. -------

struct IvfCase {
  uint32_t dim;
  size_t n;
  uint32_t clusters;
};

class IvfExactnessTest : public ::testing::TestWithParam<IvfCase> {};

TEST_P(IvfExactnessTest, FullProbeEqualsBruteForce) {
  const auto [dim, n, clusters] = GetParam();
  SyntheticOptions opt;
  opt.dim = dim;
  opt.num_base = n;
  opt.num_queries = 5;
  opt.seed = dim * 7 + clusters;
  auto ds = GenerateClustered(opt);
  ComputeGroundTruth(&ds, 10, Metric::kL2);

  faisslike::IvfFlatOptions iopt;
  iopt.num_clusters = clusters;
  iopt.sample_ratio = 1.0;
  faisslike::IvfFlatIndex index(dim, iopt);
  ASSERT_TRUE(index.Build(ds.base.data(), n).ok());
  SearchParams params;
  params.k = 10;
  params.nprobe = clusters;
  for (size_t q = 0; q < ds.num_queries; ++q) {
    auto results = index.Search(ds.query_vector(q), params).ValueOrDie();
    ASSERT_EQ(results.size(), 10u);
    for (size_t i = 0; i < 10; ++i) {
      EXPECT_EQ(results[i].id, ds.ground_truth[q][i])
          << "dim=" << dim << " c=" << clusters << " q=" << q << " i=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, IvfExactnessTest,
    ::testing::Values(IvfCase{4, 200, 2}, IvfCase{8, 500, 8},
                      IvfCase{16, 1000, 16}, IvfCase{32, 800, 31},
                      IvfCase{3, 300, 5}));

// --- SearchBatch equals per-query Search across the same grid. -----------

class BatchParityTest : public ::testing::TestWithParam<IvfCase> {};

TEST_P(BatchParityTest, BatchedEqualsPerQueryAtAnyThreadCount) {
  const auto [dim, n, clusters] = GetParam();
  SyntheticOptions opt;
  opt.dim = dim;
  opt.num_base = n;
  opt.num_queries = 9;
  opt.seed = dim * 13 + clusters;
  auto ds = GenerateClustered(opt);

  faisslike::IvfFlatOptions iopt;
  iopt.num_clusters = clusters;
  iopt.sample_ratio = 1.0;
  faisslike::IvfFlatIndex index(dim, iopt);
  ASSERT_TRUE(index.Build(ds.base.data(), n).ok());
  SearchParams params;
  params.k = 10;
  params.nprobe = std::max(1u, clusters / 2);
  for (int threads : {1, 3}) {
    params.num_threads = threads;
    auto batched =
        index.SearchBatch(ds.queries.data(), ds.num_queries, params)
            .ValueOrDie();
    ASSERT_EQ(batched.size(), ds.num_queries);
    for (size_t q = 0; q < ds.num_queries; ++q) {
      auto single = index.Search(ds.query_vector(q), params).ValueOrDie();
      EXPECT_EQ(batched[q], single)
          << "dim=" << dim << " c=" << clusters << " threads=" << threads
          << " q=" << q;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BatchParityTest,
    ::testing::Values(IvfCase{4, 200, 2}, IvfCase{8, 500, 8},
                      IvfCase{16, 1000, 16}, IvfCase{32, 800, 31},
                      IvfCase{3, 300, 5}));

// --- HNSW graph invariants across bnn values. ----------------------------

class HnswInvariantTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(HnswInvariantTest, ConnectivityAndDegreeBounds) {
  const uint32_t bnn = GetParam();
  SyntheticOptions opt;
  opt.dim = 16;
  opt.num_base = 600;
  opt.num_queries = 1;
  opt.seed = bnn;
  auto ds = GenerateClustered(opt);
  faisslike::HnswOptions hopt;
  hopt.bnn = bnn;
  hopt.efb = 2 * bnn;
  faisslike::HnswIndex index(ds.dim, hopt);
  ASSERT_TRUE(index.Build(ds.base.data(), ds.num_base).ok());

  // Degree bounds at every level.
  for (uint32_t node = 0; node < ds.num_base; ++node) {
    for (int lev = 0; lev <= index.NodeLevel(node); ++lev) {
      EXPECT_LE(index.NeighborsOf(node, lev).size(),
                lev == 0 ? 2 * bnn : bnn);
    }
  }

  // Level-0 graph is (almost entirely) reachable from node 0 by BFS over
  // undirected edges — HNSW must not fragment.
  std::vector<char> seen(ds.num_base, 0);
  std::vector<std::set<uint32_t>> undirected(ds.num_base);
  for (uint32_t node = 0; node < ds.num_base; ++node) {
    for (uint32_t nb : index.NeighborsOf(node, 0)) {
      undirected[node].insert(nb);
      undirected[nb].insert(node);
    }
  }
  std::vector<uint32_t> stack = {0};
  seen[0] = 1;
  size_t reached = 1;
  while (!stack.empty()) {
    const uint32_t cur = stack.back();
    stack.pop_back();
    for (uint32_t nb : undirected[cur]) {
      if (!seen[nb]) {
        seen[nb] = 1;
        ++reached;
        stack.push_back(nb);
      }
    }
  }
  EXPECT_GE(reached, ds.num_base * 95 / 100) << "bnn=" << bnn;
}

INSTANTIATE_TEST_SUITE_P(BnnSweep, HnswInvariantTest,
                         ::testing::Values(4, 8, 16, 32));

// --- Slotted page round-trips under random item sizes. --------------------

class PageFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PageFuzzTest, RandomItemsRoundTrip) {
  Rng rng(GetParam());
  const uint32_t page_size = rng.Uniform(2) == 0 ? 4096 : 8192;
  std::vector<char> buf(page_size);
  pgstub::PageView page(buf.data(), page_size);
  page.Init(static_cast<uint16_t>(rng.Uniform(64)));

  std::vector<std::vector<char>> items;
  for (;;) {
    const uint16_t len = static_cast<uint16_t>(1 + rng.Uniform(300));
    std::vector<char> item(len);
    for (auto& ch : item) ch = static_cast<char>(rng.Uniform(256));
    if (page.AddItem(item.data(), len) == pgstub::kInvalidOffset) break;
    items.push_back(std::move(item));
  }
  ASSERT_TRUE(page.Check().ok());
  ASSERT_EQ(page.ItemCount(), items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    const auto slot = static_cast<pgstub::OffsetNumber>(i + 1);
    ASSERT_EQ(page.GetItemLength(slot), items[i].size());
    EXPECT_EQ(std::memcmp(page.GetItem(slot), items[i].data(),
                          items[i].size()),
              0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PageFuzzTest,
                         ::testing::Range<uint64_t>(1, 16));

}  // namespace
}  // namespace vecdb
