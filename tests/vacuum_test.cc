// VACUUM tests: space reclamation after deletes on the PASE engine.
#include <gtest/gtest.h>

#include <filesystem>

#include <memory>

#include "datasets/synthetic.h"
#include "pase/ivf_flat.h"

namespace vecdb::pase {
namespace {

class VacuumTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const std::string dir =
        ::testing::TempDir() + "/vacuum_" +
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir);
    smgr_ = std::make_unique<pgstub::StorageManager>(
        pgstub::StorageManager::Open(dir, 8192).ValueOrDie());
    bufmgr_ = std::make_unique<pgstub::BufferManager>(smgr_.get(), 4096);

    SyntheticOptions opt;
    opt.dim = 16;
    opt.num_base = 600;
    opt.num_queries = 4;
    ds_ = GenerateClustered(opt);
  }
  PaseEnv Env() { return {smgr_.get(), bufmgr_.get()}; }

  std::unique_ptr<pgstub::StorageManager> smgr_;
  std::unique_ptr<pgstub::BufferManager> bufmgr_;
  Dataset ds_;
};

TEST_F(VacuumTest, ReclaimsSpaceAndPreservesResults) {
  PaseIvfFlatOptions opt;
  opt.num_clusters = 8;
  opt.sample_ratio = 1.0;
  PaseIvfFlatIndex index(Env(), ds_.dim, opt);
  ASSERT_TRUE(index.Build(ds_.base.data(), ds_.num_base).ok());
  const size_t size_before = index.SizeBytes();

  // Delete 2/3 of the rows.
  for (int64_t id = 0; id < 400; ++id) {
    ASSERT_TRUE(index.Delete(id).ok());
  }
  EXPECT_EQ(index.NumVectors(), 200u);
  SearchParams params;
  params.k = 10;
  params.nprobe = 8;
  auto before = index.Search(ds_.query_vector(0), params).ValueOrDie();

  ASSERT_TRUE(index.Vacuum().ok());
  EXPECT_EQ(index.NumVectors(), 200u);
  // The rewritten chains are materially smaller.
  EXPECT_LT(index.SizeBytes(), size_before);
  // Results identical to the tombstone-filtered view.
  auto after = index.Search(ds_.query_vector(0), params).ValueOrDie();
  EXPECT_EQ(before, after);
  // All surviving ids are >= 400.
  for (const auto& nb : after) EXPECT_GE(nb.id, 400);
}

TEST_F(VacuumTest, NoTombstonesIsNoOp) {
  PaseIvfFlatOptions opt;
  opt.num_clusters = 8;
  opt.sample_ratio = 1.0;
  PaseIvfFlatIndex index(Env(), ds_.dim, opt);
  ASSERT_TRUE(index.Build(ds_.base.data(), ds_.num_base).ok());
  const size_t size_before = index.SizeBytes();
  ASSERT_TRUE(index.Vacuum().ok());
  EXPECT_EQ(index.SizeBytes(), size_before);
}

TEST_F(VacuumTest, InsertAfterVacuumUsesFreshIds) {
  PaseIvfFlatOptions opt;
  opt.num_clusters = 4;
  opt.sample_ratio = 1.0;
  PaseIvfFlatIndex index(Env(), ds_.dim, opt);
  ASSERT_TRUE(index.Build(ds_.base.data(), 100).ok());
  ASSERT_TRUE(index.Delete(5).ok());
  ASSERT_TRUE(index.Vacuum().ok());
  // The next insert must NOT collide with a surviving id.
  ASSERT_TRUE(index.Insert(ds_.base_vector(100)).ok());
  SearchParams params;
  params.k = 1;
  params.nprobe = 4;
  auto results = index.Search(ds_.base_vector(100), params).ValueOrDie();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].id, 100);  // ids continue from the original count
}

TEST_F(VacuumTest, UnbuiltIndexRejected) {
  PaseIvfFlatOptions opt;
  PaseIvfFlatIndex index(Env(), ds_.dim, opt);
  EXPECT_FALSE(index.Vacuum().ok());
}

}  // namespace
}  // namespace vecdb::pase
