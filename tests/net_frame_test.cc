// Wire-protocol codec tests: frame round trips, torn-frame handling,
// header/payload corruption, oversized lengths, unknown types, and a
// deterministic bit-flip fuzz sweep. Every malformed input must come
// back as a clean Corruption error — never a crash — and ci/run_checks.sh
// also runs this binary under ASan/UBSan to prove it.
#include "net/frame.h"

#include <gtest/gtest.h>

#include "pgstub/crc32c.h"

#include <cstring>
#include <string>
#include <vector>

namespace vecdb::net {
namespace {

/// Feeds `bytes` and expects exactly one decoded frame.
Frame DecodeOne(const std::vector<uint8_t>& bytes) {
  FrameDecoder decoder;
  decoder.Feed(bytes.data(), bytes.size());
  auto next = decoder.Next();
  EXPECT_TRUE(next.ok()) << next.status().ToString();
  EXPECT_TRUE(next->has_value());
  return **next;
}

TEST(FrameTest, StatementRoundTrip) {
  Frame in;
  in.type = FrameType::kStatement;
  in.payload = EncodeStatement("SELECT id FROM t ORDER BY vec <-> '1,2'");
  const Frame out = DecodeOne(EncodeFrame(in));
  EXPECT_EQ(out.type, FrameType::kStatement);
  auto sql = DecodeStatement(out.payload);
  ASSERT_TRUE(sql.ok());
  EXPECT_EQ(*sql, "SELECT id FROM t ORDER BY vec <-> '1,2'");
}

TEST(FrameTest, EmptyPayloadRoundTrip) {
  Frame in;
  in.type = FrameType::kCancel;
  const Frame out = DecodeOne(EncodeFrame(in));
  EXPECT_EQ(out.type, FrameType::kCancel);
  EXPECT_TRUE(out.payload.empty());
}

TEST(FrameTest, HelloAndHelloOkRoundTrip) {
  auto version = DecodeHello(EncodeHello(kProtocolVersion));
  ASSERT_TRUE(version.ok());
  EXPECT_EQ(*version, kProtocolVersion);

  auto ok = DecodeHelloOk(EncodeHelloOk(kProtocolVersion, 42));
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->version, kProtocolVersion);
  EXPECT_EQ(ok->session_id, 42u);
}

TEST(FrameTest, QueryResultRoundTrip) {
  sql::QueryResult in;
  in.message = "EXPLAIN-ish text";
  in.columns = {"id", "distance"};
  in.rows = {{7, 0.25}, {-3, 1.5}};
  in.stats.wall_seconds = 0.125;
  in.stats.rows_scanned = 1000;
  in.stats.rows_returned = 2;
  auto out = DecodeQueryResult(EncodeQueryResult(in));
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->message, in.message);
  EXPECT_EQ(out->columns, in.columns);
  ASSERT_EQ(out->rows.size(), 2u);
  EXPECT_EQ(out->rows[0].id, 7);
  EXPECT_DOUBLE_EQ(out->rows[0].distance, 0.25);
  EXPECT_EQ(out->rows[1].id, -3);
  EXPECT_DOUBLE_EQ(out->rows[1].distance, 1.5);
  EXPECT_DOUBLE_EQ(out->stats.wall_seconds, 0.125);
  EXPECT_EQ(out->stats.rows_scanned, 1000u);
  EXPECT_EQ(out->stats.rows_returned, 2u);
}

TEST(FrameTest, ErrorRoundTrip) {
  auto err =
      DecodeError(EncodeError(Status::Cancelled("seqscan: statement timeout")));
  ASSERT_TRUE(err.ok());
  const Status restored = err->ToStatus();
  EXPECT_TRUE(restored.IsCancelled());
  EXPECT_EQ(restored.message(), "seqscan: statement timeout");
}

TEST(FrameTest, TornFrameByteWiseFeed) {
  Frame in;
  in.type = FrameType::kStatement;
  in.payload = EncodeStatement("SHOW METRICS");
  const std::vector<uint8_t> bytes = EncodeFrame(in);
  FrameDecoder decoder;
  // Every prefix of the frame must decode to "not yet", never an error.
  for (size_t i = 0; i + 1 < bytes.size(); ++i) {
    decoder.Feed(&bytes[i], 1);
    auto next = decoder.Next();
    ASSERT_TRUE(next.ok()) << "at byte " << i << ": "
                           << next.status().ToString();
    ASSERT_FALSE(next->has_value()) << "at byte " << i;
  }
  decoder.Feed(&bytes[bytes.size() - 1], 1);
  auto next = decoder.Next();
  ASSERT_TRUE(next.ok());
  ASSERT_TRUE(next->has_value());
  EXPECT_EQ((*next)->type, FrameType::kStatement);
}

TEST(FrameTest, BackToBackFramesDecodeInOrder) {
  std::vector<uint8_t> stream;
  for (int i = 0; i < 5; ++i) {
    Frame f;
    f.type = FrameType::kStatement;
    f.payload = EncodeStatement("stmt " + std::to_string(i));
    const auto bytes = EncodeFrame(f);
    stream.insert(stream.end(), bytes.begin(), bytes.end());
  }
  FrameDecoder decoder;
  decoder.Feed(stream.data(), stream.size());
  for (int i = 0; i < 5; ++i) {
    auto next = decoder.Next();
    ASSERT_TRUE(next.ok());
    ASSERT_TRUE(next->has_value());
    EXPECT_EQ(*DecodeStatement((*next)->payload), "stmt " + std::to_string(i));
  }
  EXPECT_FALSE((*decoder.Next()).has_value());
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(FrameTest, HeaderCorruptionIsRejectedAndSticky) {
  Frame in;
  in.type = FrameType::kStatement;
  in.payload = EncodeStatement("SELECT 1");
  std::vector<uint8_t> bytes = EncodeFrame(in);
  bytes[2] ^= 0x40;  // flip a magic bit: header CRC must catch it
  FrameDecoder decoder;
  decoder.Feed(bytes.data(), bytes.size());
  auto next = decoder.Next();
  ASSERT_FALSE(next.ok());
  EXPECT_TRUE(next.status().IsCorruption());
  // Poisoned: even a clean follow-up frame is refused (no resync).
  const auto good = EncodeFrame(in);
  decoder.Feed(good.data(), good.size());
  EXPECT_FALSE(decoder.Next().ok());
}

TEST(FrameTest, PayloadCorruptionIsRejected) {
  Frame in;
  in.type = FrameType::kStatement;
  in.payload = EncodeStatement("SELECT 1");
  std::vector<uint8_t> bytes = EncodeFrame(in);
  bytes[kFrameHeaderSize + 3] ^= 0x01;  // flip one payload bit
  FrameDecoder decoder;
  decoder.Feed(bytes.data(), bytes.size());
  auto next = decoder.Next();
  ASSERT_FALSE(next.ok());
  EXPECT_TRUE(next.status().IsCorruption());
}

TEST(FrameTest, OversizedLengthIsRejectedWithoutBuffering) {
  // Hand-build a header claiming a 1GB payload with a VALID header CRC:
  // the length cap must reject it before any attempt to buffer 1GB.
  Frame in;
  in.type = FrameType::kStatement;
  in.payload = EncodeStatement("x");
  std::vector<uint8_t> bytes = EncodeFrame(in);
  const uint32_t huge = 1u << 30;
  std::memcpy(&bytes[8], &huge, sizeof(huge));  // little-endian store
  // Recompute the header CRC so only the length is "wrong".
  const uint32_t crc = pgstub::Crc32c(bytes.data(), 12);
  std::memcpy(&bytes[12], &crc, sizeof(crc));
  FrameDecoder decoder;
  decoder.Feed(bytes.data(), kFrameHeaderSize);
  auto next = decoder.Next();
  ASSERT_FALSE(next.ok());
  EXPECT_NE(next.status().message().find("too large"), std::string::npos);
}

TEST(FrameTest, UnknownFrameTypeIsRejected) {
  Frame in;
  in.type = static_cast<FrameType>(99);
  std::vector<uint8_t> bytes = EncodeFrame(in);
  FrameDecoder decoder;
  decoder.Feed(bytes.data(), bytes.size());
  auto next = decoder.Next();
  ASSERT_FALSE(next.ok());
  EXPECT_NE(next.status().message().find("unknown frame type"),
            std::string::npos);
}

TEST(FrameTest, TruncatedPayloadCodecsFailCleanly) {
  // Chop every payload codec's input at every length: all must return an
  // error (or, for valid prefixes, a value) — never crash or over-read.
  const std::vector<uint8_t> hello = EncodeHelloOk(1, 123);
  for (size_t n = 0; n < hello.size(); ++n) {
    std::vector<uint8_t> cut(hello.begin(), hello.begin() + n);
    EXPECT_FALSE(DecodeHelloOk(cut).ok()) << "prefix " << n;
  }
  sql::QueryResult qr;
  qr.columns = {"id"};
  qr.rows = {{1, 2.0}};
  const std::vector<uint8_t> result = EncodeQueryResult(qr);
  for (size_t n = 0; n < result.size(); ++n) {
    std::vector<uint8_t> cut(result.begin(), result.begin() + n);
    EXPECT_FALSE(DecodeQueryResult(cut).ok()) << "prefix " << n;
  }
}

TEST(FrameTest, TrailingBytesInPayloadAreRejected) {
  std::vector<uint8_t> payload = EncodeHello(1);
  payload.push_back(0);  // one stray byte
  EXPECT_FALSE(DecodeHello(payload).ok());
}

TEST(FrameTest, ErrorFrameWithBadCodeIsRejected) {
  std::vector<uint8_t> payload = EncodeError(Status::Internal("x"));
  payload[0] = 0;  // StatusCode::kOk is not a valid error
  EXPECT_FALSE(DecodeError(payload).ok());
  payload[0] = 250;  // out of range
  EXPECT_FALSE(DecodeError(payload).ok());
}

// Deterministic xorshift PRNG: the fuzz sweep must be reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}
  uint64_t Next() {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 7;
    state_ ^= state_ << 17;
    return state_;
  }

 private:
  uint64_t state_;
};

TEST(FrameFuzzTest, SingleBitFlipsNeverCrashAndNeverAlias) {
  Frame in;
  in.type = FrameType::kResult;
  sql::QueryResult qr;
  qr.columns = {"id", "distance"};
  for (int i = 0; i < 16; ++i) qr.rows.push_back({i, i * 0.5});
  in.payload = EncodeQueryResult(qr);
  const std::vector<uint8_t> clean = EncodeFrame(in);
  // Every single-bit flip must either fail with Corruption or (never)
  // decode. CRC-32C detects all 1-bit errors, so "decoded fine" would
  // mean the CRC is not actually being checked.
  for (size_t byte = 0; byte < clean.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> mutated = clean;
      mutated[byte] ^= static_cast<uint8_t>(1u << bit);
      FrameDecoder decoder;
      decoder.Feed(mutated.data(), mutated.size());
      auto next = decoder.Next();
      ASSERT_FALSE(next.ok() && next->has_value())
          << "bit flip at byte " << byte << " bit " << bit
          << " decoded as a valid frame";
    }
  }
}

TEST(FrameFuzzTest, RandomGarbageNeverCrashes) {
  Rng rng(0x5eed5eed);
  for (int round = 0; round < 200; ++round) {
    const size_t len = rng.Next() % 512;
    std::vector<uint8_t> garbage(len);
    for (auto& b : garbage) b = static_cast<uint8_t>(rng.Next());
    FrameDecoder decoder;
    decoder.Feed(garbage.data(), garbage.size());
    // Drain until error or exhaustion; every outcome but a crash is fine.
    for (int i = 0; i < 8; ++i) {
      auto next = decoder.Next();
      if (!next.ok() || !next->has_value()) break;
    }
  }
}

TEST(FrameFuzzTest, RandomPayloadsThroughCodecsNeverCrash) {
  Rng rng(0xfeedface);
  for (int round = 0; round < 500; ++round) {
    const size_t len = rng.Next() % 256;
    std::vector<uint8_t> payload(len);
    for (auto& b : payload) b = static_cast<uint8_t>(rng.Next());
    (void)DecodeHello(payload);
    (void)DecodeHelloOk(payload);
    (void)DecodeStatement(payload);
    (void)DecodeQueryResult(payload);
    (void)DecodeError(payload);
  }
}

}  // namespace
}  // namespace vecdb::net
