#include "pgstub/index_am.h"

#include <gtest/gtest.h>

#include <filesystem>

#include <memory>

#include "faisslike/flat_index.h"

namespace vecdb::pgstub {
namespace {

class IndexAmTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const std::string dir =
        ::testing::TempDir() + "/am_" +
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir);
    smgr_ = std::make_unique<StorageManager>(
        StorageManager::Open(dir, 8192).ValueOrDie());
    bufmgr_ = std::make_unique<BufferManager>(smgr_.get(), 256);
    table_ = std::make_unique<HeapTable>(
        HeapTable::Create(bufmgr_.get(), smgr_.get(), "t", 2).ValueOrDie());
    // Rows with non-dense user ids.
    const float vecs[4][2] = {{0, 0}, {1, 1}, {2, 2}, {3, 3}};
    const int64_t ids[4] = {100, 200, 300, 400};
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(table_->Insert(ids[i], vecs[i]).ok());
    }
  }

  std::unique_ptr<StorageManager> smgr_;
  std::unique_ptr<BufferManager> bufmgr_;
  std::unique_ptr<HeapTable> table_;
};

TEST_F(IndexAmTest, BuildAndScanTranslatesRowIds) {
  faisslike::FlatIndex index(2);
  VectorIndexAm am(&index);
  ASSERT_TRUE(am.AmBuild(*table_).ok());
  const float query[2] = {0.9f, 0.9f};
  AmScanOptions options;
  options.k = 2;
  auto cursor = am.AmBeginScan(query, options).ValueOrDie();
  Neighbor nb;
  ASSERT_TRUE(*cursor->AmGetTuple(&nb));
  EXPECT_EQ(nb.id, 200);  // the user id, not position 1
  ASSERT_TRUE(*cursor->AmGetTuple(&nb));
  EXPECT_EQ(nb.id, 100);
  EXPECT_FALSE(*cursor->AmGetTuple(&nb));  // k=2 exhausted
}

TEST_F(IndexAmTest, CursorIsExhaustedNotResettable) {
  faisslike::FlatIndex index(2);
  VectorIndexAm am(&index);
  ASSERT_TRUE(am.AmBuild(*table_).ok());
  const float query[2] = {0, 0};
  AmScanOptions options;
  options.k = 10;  // more than rows: returns all 4 then stops
  auto cursor = am.AmBeginScan(query, options).ValueOrDie();
  Neighbor nb;
  int count = 0;
  while (*cursor->AmGetTuple(&nb)) ++count;
  EXPECT_EQ(count, 4);
  EXPECT_FALSE(*cursor->AmGetTuple(&nb));
}

TEST_F(IndexAmTest, EmptyTableFailsBuild) {
  auto empty = HeapTable::Create(bufmgr_.get(), smgr_.get(), "empty", 2)
                   .ValueOrDie();
  faisslike::FlatIndex index(2);
  VectorIndexAm am(&index);
  EXPECT_FALSE(am.AmBuild(empty).ok());
}

TEST_F(IndexAmTest, AmInsertIsNotSupported) {
  faisslike::FlatIndex index(2);
  VectorIndexAm am(&index);
  const float vec[2] = {0, 0};
  EXPECT_TRUE(am.AmInsert(vec, 1).IsNotSupported());
}

}  // namespace
}  // namespace vecdb::pgstub
