#include <gtest/gtest.h>

#include <set>

#include "datasets/ground_truth.h"
#include "datasets/synthetic.h"
#include "distance/kernels.h"
#include "faisslike/flat_index.h"
#include "faisslike/hnsw.h"
#include "faisslike/ivf_flat.h"
#include "faisslike/ivf_pq.h"

namespace vecdb::faisslike {
namespace {

Dataset TestData(uint32_t dim = 32, size_t n = 2000, size_t nq = 20) {
  SyntheticOptions opt;
  opt.dim = dim;
  opt.num_base = n;
  opt.num_queries = nq;
  opt.num_natural_clusters = 16;
  opt.seed = 42;
  auto ds = GenerateClustered(opt);
  ComputeGroundTruth(&ds, 10, Metric::kL2);
  return ds;
}

double MeasureRecall(const VectorIndex& index, const Dataset& ds,
                     const SearchParams& params) {
  std::vector<std::vector<Neighbor>> results;
  for (size_t q = 0; q < ds.num_queries; ++q) {
    results.push_back(index.Search(ds.query_vector(q), params).ValueOrDie());
  }
  return MeanRecallAtK(results, ds.ground_truth, 10);
}

TEST(FlatIndexTest, ExactRecall) {
  auto ds = TestData();
  FlatIndex index(ds.dim);
  ASSERT_TRUE(index.Build(ds.base.data(), ds.num_base).ok());
  SearchParams params;
  params.k = 10;
  EXPECT_DOUBLE_EQ(MeasureRecall(index, ds, params), 1.0);
  EXPECT_EQ(index.NumVectors(), ds.num_base);
  EXPECT_GT(index.SizeBytes(), ds.num_base * ds.dim * 4);
}

TEST(FlatIndexTest, ResultsSortedAndSizedK) {
  auto ds = TestData();
  FlatIndex index(ds.dim);
  ASSERT_TRUE(index.Build(ds.base.data(), ds.num_base).ok());
  SearchParams params;
  params.k = 25;
  auto results = index.Search(ds.query_vector(0), params).ValueOrDie();
  ASSERT_EQ(results.size(), 25u);
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_LE(results[i - 1].dist, results[i].dist);
  }
}

TEST(FlatIndexTest, ErrorPaths) {
  FlatIndex index(8);
  SearchParams params;
  EXPECT_FALSE(index.Search(nullptr, params).ok());
  std::vector<float> q(8, 0.f);
  params.k = 0;
  EXPECT_FALSE(index.Search(q.data(), params).ok());
  EXPECT_FALSE(index.Add(nullptr, 1).ok());
}

TEST(IvfFlatTest, HighRecallWithEnoughProbes) {
  auto ds = TestData();
  IvfFlatOptions opt;
  opt.num_clusters = 32;
  opt.sample_ratio = 0.5;
  IvfFlatIndex index(ds.dim, opt);
  ASSERT_TRUE(index.Build(ds.base.data(), ds.num_base).ok());
  SearchParams params;
  params.k = 10;
  params.nprobe = 32;  // probing every bucket => exact
  EXPECT_DOUBLE_EQ(MeasureRecall(index, ds, params), 1.0);
  params.nprobe = 8;
  EXPECT_GE(MeasureRecall(index, ds, params), 0.8);
}

TEST(IvfFlatTest, BuildStatsPopulated) {
  auto ds = TestData();
  IvfFlatOptions opt;
  opt.num_clusters = 16;
  IvfFlatIndex index(ds.dim, opt);
  ASSERT_TRUE(index.Build(ds.base.data(), ds.num_base).ok());
  EXPECT_GT(index.build_stats().train_seconds, 0.0);
  EXPECT_GT(index.build_stats().add_seconds, 0.0);
}

TEST(IvfFlatTest, SgemmOnOffSameResults) {
  auto ds = TestData();
  IvfFlatOptions on, off;
  on.num_clusters = off.num_clusters = 16;
  on.use_sgemm = true;
  off.use_sgemm = false;
  IvfFlatIndex a(ds.dim, on), b(ds.dim, off);
  ASSERT_TRUE(a.Build(ds.base.data(), ds.num_base).ok());
  ASSERT_TRUE(b.Build(ds.base.data(), ds.num_base).ok());
  SearchParams params;
  params.k = 10;
  params.nprobe = 16;
  for (size_t q = 0; q < 5; ++q) {
    auto ra = a.Search(ds.query_vector(q), params).ValueOrDie();
    auto rb = b.Search(ds.query_vector(q), params).ValueOrDie();
    ASSERT_EQ(ra.size(), rb.size());
    for (size_t i = 0; i < ra.size(); ++i) EXPECT_EQ(ra[i].id, rb[i].id);
  }
}

TEST(IvfFlatTest, CentroidTransplant) {
  // The Fig 15 mechanism: an index fed foreign centroids must use them.
  auto ds = TestData();
  IvfFlatOptions opt;
  opt.num_clusters = 16;
  IvfFlatIndex donor(ds.dim, opt), recipient(ds.dim, opt);
  ASSERT_TRUE(donor.Build(ds.base.data(), ds.num_base).ok());
  ASSERT_TRUE(
      recipient.SetCentroids(donor.centroids(), donor.num_clusters()).ok());
  ASSERT_TRUE(recipient.AddBatch(ds.base.data(), ds.num_base).ok());
  // Same centroids + same data => identical bucket contents.
  for (uint32_t b = 0; b < donor.num_clusters(); ++b) {
    EXPECT_EQ(donor.bucket_ids(b), recipient.bucket_ids(b)) << "bucket " << b;
  }
}

TEST(IvfFlatTest, ParallelSearchMatchesSerial) {
  auto ds = TestData();
  IvfFlatOptions opt;
  opt.num_clusters = 32;
  IvfFlatIndex index(ds.dim, opt);
  ASSERT_TRUE(index.Build(ds.base.data(), ds.num_base).ok());
  SearchParams serial, parallel;
  serial.k = parallel.k = 10;
  serial.nprobe = parallel.nprobe = 16;
  parallel.num_threads = 4;
  ParallelAccounting acct;
  parallel.ctx.accounting = &acct;
  for (size_t q = 0; q < 5; ++q) {
    auto rs = index.Search(ds.query_vector(q), serial).ValueOrDie();
    auto rp = index.Search(ds.query_vector(q), parallel).ValueOrDie();
    EXPECT_EQ(rs, rp);
  }
  EXPECT_EQ(acct.worker_busy_nanos.size(), 4u);
  EXPECT_GT(acct.TotalWorkSeconds(), 0.0);
}

TEST(IvfFlatTest, ErrorPaths) {
  IvfFlatOptions opt;
  opt.num_clusters = 64;
  IvfFlatIndex index(8, opt);
  std::vector<float> few(8 * 10, 0.f);
  EXPECT_FALSE(index.Build(few.data(), 10).ok());  // c > n
  std::vector<float> q(8, 0.f);
  SearchParams params;
  EXPECT_FALSE(index.Search(q.data(), params).ok());  // not built
}

TEST(IvfPqTest, ReasonableRecallDespiteCompression) {
  auto ds = TestData(32, 3000);
  IvfPqOptions opt;
  opt.num_clusters = 16;
  opt.pq_m = 8;
  opt.pq_codes = 64;
  opt.sample_ratio = 0.3;
  IvfPqIndex index(ds.dim, opt);
  ASSERT_TRUE(index.Build(ds.base.data(), ds.num_base).ok());
  SearchParams params;
  params.k = 10;
  params.nprobe = 16;
  // PQ without re-ranking is lossy; require clearly-better-than-random.
  EXPECT_GE(MeasureRecall(index, ds, params), 0.3);
  // PQ codes must be far smaller than raw vectors.
  EXPECT_LT(index.SizeBytes(), ds.num_base * ds.dim * sizeof(float));

  // More codewords must improve recall (quantization property).
  IvfPqOptions fine = opt;
  fine.pq_codes = 256;
  IvfPqIndex fine_index(ds.dim, fine);
  ASSERT_TRUE(fine_index.Build(ds.base.data(), ds.num_base).ok());
  EXPECT_GE(MeasureRecall(fine_index, ds, params) + 0.05,
            MeasureRecall(index, ds, params));
}

TEST(IvfPqTest, OptimizedAndNaiveTablesAgreeOnResults) {
  auto ds = TestData(32, 1500);
  IvfPqOptions opt;
  opt.num_clusters = 16;
  opt.pq_m = 8;
  opt.pq_codes = 32;
  opt.sample_ratio = 0.5;
  IvfPqIndex fast(ds.dim, opt);
  opt.optimized_table = false;
  IvfPqIndex slow(ds.dim, opt);
  ASSERT_TRUE(fast.Build(ds.base.data(), ds.num_base).ok());
  ASSERT_TRUE(slow.Build(ds.base.data(), ds.num_base).ok());
  SearchParams params;
  params.k = 10;
  params.nprobe = 8;
  for (size_t q = 0; q < 5; ++q) {
    auto rf = fast.Search(ds.query_vector(q), params).ValueOrDie();
    auto rs = slow.Search(ds.query_vector(q), params).ValueOrDie();
    ASSERT_EQ(rf.size(), rs.size());
    for (size_t i = 0; i < rf.size(); ++i) EXPECT_EQ(rf[i].id, rs[i].id);
  }
}

TEST(IvfPqTest, RefinementBoostsRecall) {
  // Faiss IndexRefineFlat behaviour: re-ranking ADC candidates against the
  // raw vectors must not hurt recall, and typically improves it.
  auto ds = TestData(32, 2000);
  IvfPqOptions base;
  base.num_clusters = 16;
  base.pq_m = 8;
  base.pq_codes = 16;  // coarse codes so ADC alone is noticeably lossy
  base.sample_ratio = 0.5;
  IvfPqIndex plain(ds.dim, base);
  base.refine_factor = 4;
  IvfPqIndex refined(ds.dim, base);
  ASSERT_TRUE(plain.Build(ds.base.data(), ds.num_base).ok());
  ASSERT_TRUE(refined.Build(ds.base.data(), ds.num_base).ok());
  SearchParams params;
  params.k = 10;
  params.nprobe = 16;
  const double plain_recall = MeasureRecall(plain, ds, params);
  const double refined_recall = MeasureRecall(refined, ds, params);
  EXPECT_GE(refined_recall + 1e-9, plain_recall);
  // Refinement is bounded by the ADC candidate pool; require a clear gain
  // over the unrefined index rather than an absolute bar.
  EXPECT_GE(refined_recall, plain_recall + 0.05);
  // Refinement stores the raw vectors: strictly larger footprint.
  EXPECT_GT(refined.SizeBytes(), plain.SizeBytes());
}

TEST(IvfPqTest, RefinedResultsAreExactDistances) {
  auto ds = TestData(32, 1000);
  IvfPqOptions opt;
  opt.num_clusters = 8;
  opt.pq_m = 8;
  opt.pq_codes = 16;
  opt.sample_ratio = 0.5;
  opt.refine_factor = 3;
  IvfPqIndex index(ds.dim, opt);
  ASSERT_TRUE(index.Build(ds.base.data(), ds.num_base).ok());
  SearchParams params;
  params.k = 5;
  params.nprobe = 8;
  auto results = index.Search(ds.query_vector(0), params).ValueOrDie();
  for (const auto& nb : results) {
    const float exact = L2Sqr(ds.query_vector(0),
                              ds.base_vector(static_cast<size_t>(nb.id)),
                              ds.dim);
    EXPECT_NEAR(nb.dist, exact, 1e-3f * (exact + 1.f));
  }
}

TEST(HnswTest, HighRecall) {
  auto ds = TestData(32, 2000);
  HnswOptions opt;
  opt.bnn = 16;
  opt.efb = 40;
  HnswIndex index(ds.dim, opt);
  ASSERT_TRUE(index.Build(ds.base.data(), ds.num_base).ok());
  SearchParams params;
  params.k = 10;
  params.efs = 100;
  EXPECT_GE(MeasureRecall(index, ds, params), 0.9);
}

TEST(HnswTest, DegreeBoundsRespected) {
  auto ds = TestData(16, 800);
  HnswOptions opt;
  opt.bnn = 8;
  HnswIndex index(ds.dim, opt);
  ASSERT_TRUE(index.Build(ds.base.data(), ds.num_base).ok());
  for (uint32_t node = 0; node < 800; ++node) {
    for (int lev = 0; lev <= index.NodeLevel(node); ++lev) {
      const auto nbrs = index.NeighborsOf(node, lev);
      EXPECT_LE(nbrs.size(), lev == 0 ? 16u : 8u);
      // No self loops, no duplicate edges.
      std::set<uint32_t> uniq(nbrs.begin(), nbrs.end());
      EXPECT_EQ(uniq.size(), nbrs.size());
      EXPECT_EQ(uniq.count(node), 0u);
    }
  }
}

TEST(HnswTest, EfsImprovesRecall) {
  auto ds = TestData(32, 2000);
  HnswOptions opt;
  opt.bnn = 8;
  opt.efb = 20;
  HnswIndex index(ds.dim, opt);
  ASSERT_TRUE(index.Build(ds.base.data(), ds.num_base).ok());
  SearchParams lo, hi;
  lo.k = hi.k = 10;
  lo.efs = 10;
  hi.efs = 200;
  EXPECT_GE(MeasureRecall(index, ds, hi) + 1e-9,
            MeasureRecall(index, ds, lo));
}

TEST(HnswTest, SingleVectorIndex) {
  HnswOptions opt;
  HnswIndex index(4, opt);
  std::vector<float> v = {1.f, 2.f, 3.f, 4.f};
  ASSERT_TRUE(index.Build(v.data(), 1).ok());
  SearchParams params;
  params.k = 5;
  auto results = index.Search(v.data(), params).ValueOrDie();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].id, 0);
  EXPECT_NEAR(results[0].dist, 0.f, 1e-6f);
}

TEST(HnswTest, ErrorPaths) {
  HnswOptions opt;
  HnswIndex index(4, opt);
  SearchParams params;
  std::vector<float> q(4, 0.f);
  EXPECT_FALSE(index.Search(q.data(), params).ok());  // empty
  EXPECT_FALSE(index.Build(nullptr, 10).ok());
}

}  // namespace
}  // namespace vecdb::faisslike
